//! CCD++ (cyclic coordinate descent) for tensor completion.
//!
//! The third solver of SPLATT's completion study. CCD++ sweeps the rank
//! one component at a time: for component `r`, the residual tensor gets
//! component `r`'s contribution *added back*, then each mode's column `r`
//! is refit by independent one-dimensional least squares,
//!
//! ```text
//! a_r[i] = sum_{x in obs(i)} e_x * k_x  /  (mu + sum_{x in obs(i)} k_x^2)
//! ```
//!
//! with `k_x` the product of the *other* modes' column-`r` entries at
//! observation `x`, and finally the refreshed contribution is subtracted
//! from the residual again. Rows of a mode are independent, so each
//! column refit parallelizes over a per-mode grouping of the
//! observations with no synchronization — the same "root-mode"
//! parallelism the ALS completion update enjoys, but at per-column
//! granularity (which is why CCD++ has the smallest memory footprint of
//! the three solvers).

use crate::completion::{rmse_observed, CompletionOutput};
use crate::kruskal::KruskalModel;
use splatt_dense::Matrix;
use splatt_par::{partition, TaskTeam, TeamConfig};
use splatt_tensor::SparseTensor;

/// Configuration for [`tensor_complete_ccd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcdOptions {
    /// Factorization rank.
    pub rank: usize,
    /// Outer sweeps (each refits every component once).
    pub max_sweeps: usize,
    /// Stop when train RMSE improves by less than this between sweeps.
    pub tolerance: f64,
    /// Inner passes over the modes per component refit.
    pub inner_iters: usize,
    /// Ridge regularization `mu`.
    pub regularization: f64,
    /// Tasks refitting rows concurrently.
    pub ntasks: usize,
    /// Seed for initialization.
    pub seed: u64,
}

impl Default for CcdOptions {
    fn default() -> Self {
        CcdOptions {
            rank: 10,
            max_sweeps: 30,
            tolerance: 1e-5,
            inner_iters: 1,
            regularization: 1e-2,
            ntasks: 1,
            seed: 0xCCD,
        }
    }
}

/// CSR-like grouping of observation indices by one mode's rows.
struct ModeGroup {
    /// `row_ptr[i]..row_ptr[i+1]` indexes `obs` for row `i`.
    row_ptr: Vec<usize>,
    /// Observation indices (into the tensor's entry arrays).
    obs: Vec<u32>,
}

fn group_by_mode(tensor: &SparseTensor, mode: usize) -> ModeGroup {
    let dim = tensor.dims()[mode];
    let nnz = tensor.nnz();
    let mut counts = vec![0usize; dim];
    for &i in tensor.ind(mode) {
        counts[i as usize] += 1;
    }
    let mut row_ptr = partition::prefix_sum(&counts);
    let mut obs = vec![0u32; nnz];
    let mut cursor = row_ptr.clone();
    for x in 0..nnz {
        let i = tensor.ind(mode)[x] as usize;
        obs[cursor[i]] = x as u32;
        cursor[i] += 1;
    }
    row_ptr.truncate(dim + 1);
    ModeGroup { row_ptr, obs }
}

/// Factorize the observed entries of `tensor` by CCD++.
///
/// # Panics
/// Panics if `rank`, `max_sweeps`, `inner_iters`, or `ntasks` is zero.
pub fn tensor_complete_ccd(tensor: &SparseTensor, opts: &CcdOptions) -> CompletionOutput {
    assert!(opts.rank > 0, "rank must be positive");
    assert!(opts.max_sweeps > 0, "max_sweeps must be positive");
    assert!(opts.inner_iters > 0, "inner_iters must be positive");
    let team = TaskTeam::with_config(opts.ntasks, TeamConfig::short_spin());
    let order = tensor.order();
    let rank = opts.rank;
    let nnz = tensor.nnz();

    let mut factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            let mut f = Matrix::random(d, rank, opts.seed.wrapping_add(m as u64));
            f.scale(1.0 / rank as f64);
            f
        })
        .collect();

    let groups: Vec<ModeGroup> = (0..order).map(|m| group_by_mode(tensor, m)).collect();

    // residual e_x = v_x - model(x), maintained incrementally
    let model_value = |factors: &[Matrix], x: usize| -> f64 {
        (0..rank)
            .map(|r| {
                (0..order)
                    .map(|m| factors[m][(tensor.ind(m)[x] as usize, r)])
                    .product::<f64>()
            })
            .sum()
    };
    let mut residual: Vec<f64> = (0..nnz)
        .map(|x| tensor.vals()[x] - model_value(&factors, x))
        .collect();

    let mut rmse_trace = Vec::with_capacity(opts.max_sweeps);
    let mut prev_rmse = f64::INFINITY;
    let mut iterations = 0;

    // component contribution at observation x: prod_m A_m[i_m, r]
    let contrib = |factors: &[Matrix], x: usize, r: usize| -> f64 {
        (0..order)
            .map(|m| factors[m][(tensor.ind(m)[x] as usize, r)])
            .product()
    };

    for _sweep in 0..opts.max_sweeps {
        iterations += 1;
        for r in 0..rank {
            // add component r back into the residual
            for (x, e) in residual.iter_mut().enumerate() {
                *e += contrib(&factors, x, r);
            }
            for _inner in 0..opts.inner_iters {
                for (mode, group) in groups.iter().enumerate() {
                    refit_column(
                        tensor,
                        group,
                        &mut factors,
                        mode,
                        r,
                        &residual,
                        opts.regularization,
                        &team,
                    );
                }
            }
            // subtract the refreshed component
            for (x, e) in residual.iter_mut().enumerate() {
                *e -= contrib(&factors, x, r);
            }
        }

        let rmse = if nnz > 0 {
            (residual.iter().map(|e| e * e).sum::<f64>() / nnz as f64).sqrt()
        } else {
            0.0
        };
        rmse_trace.push(rmse);
        if opts.tolerance > 0.0 && (prev_rmse - rmse).abs() < opts.tolerance {
            break;
        }
        prev_rmse = rmse;
    }

    let rmse = rmse_trace.last().copied().unwrap_or(0.0);
    let out_model = KruskalModel {
        lambda: vec![1.0; rank],
        factors,
    };
    debug_assert!(
        nnz == 0 || (rmse_observed(&out_model, tensor) - rmse).abs() < 1e-6 * rmse.max(1.0),
        "incremental residual drifted from the true residual"
    );
    CompletionOutput {
        model: out_model,
        rmse_trace,
        rmse,
        iterations,
    }
}

/// Refit column `r` of `factors[mode]` by closed-form 1-D least squares
/// per row, rows parallelized over the task team.
#[allow(clippy::too_many_arguments)]
fn refit_column(
    tensor: &SparseTensor,
    group: &ModeGroup,
    factors: &mut [Matrix],
    mode: usize,
    r: usize,
    residual: &[f64],
    mu: f64,
    team: &TaskTeam,
) {
    let order = tensor.order();
    let dim = tensor.dims()[mode];

    // snapshot the other modes' columns (read-only in this refit)
    let other_cols: Vec<Vec<f64>> = (0..order)
        .map(|m| {
            if m == mode {
                Vec::new()
            } else {
                (0..tensor.dims()[m]).map(|i| factors[m][(i, r)]).collect()
            }
        })
        .collect();
    let old_col: Vec<f64> = (0..dim).map(|i| factors[mode][(i, r)]).collect();

    let mut new_col = vec![0.0; dim];
    {
        let slots: Vec<splatt_rt::sync::Mutex<&mut [f64]>> = {
            let ntasks = team.ntasks();
            let mut rest: &mut [f64] = &mut new_col;
            let mut chunks = Vec::with_capacity(ntasks);
            for tid in 0..ntasks {
                let range = partition::block(dim, ntasks, tid);
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(range.len());
                rest = tail;
                chunks.push(splatt_rt::sync::Mutex::new(head));
            }
            chunks
        };
        let other_cols = &other_cols;
        let old_col = &old_col;
        team.coforall(|tid| {
            let range = partition::block(dim, team.ntasks(), tid);
            let mut chunk = slots[tid].lock();
            for i in range.clone() {
                let mut num = 0.0;
                let mut den = mu;
                for &xi in &group.obs[group.row_ptr[i]..group.row_ptr[i + 1]] {
                    let x = xi as usize;
                    let mut k = 1.0;
                    for (m, col) in other_cols.iter().enumerate() {
                        if m != mode {
                            k *= col[tensor.ind(m)[x] as usize];
                        }
                    }
                    // residual currently *includes* component r (added
                    // back by the sweep), i.e. e_x = v - model_without_r;
                    // wait: residual = v - model + contrib_r, and
                    // contrib_r = old a_i * k, so the regression target
                    // against k is residual directly.
                    num += residual[x] * k;
                    den += k * k;
                }
                chunk[i - range.start] = if den > 0.0 { num / den } else { old_col[i] };
            }
        });
    }
    for (i, &v) in new_col.iter().enumerate() {
        factors[mode][(i, r)] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    #[test]
    fn ccd_fits_planted_observations() {
        let (full, _) = synth::planted_dense(&[10, 9, 8], 2, 0.0, 7);
        let opts = CcdOptions {
            rank: 2,
            max_sweeps: 40,
            tolerance: 0.0,
            regularization: 1e-5,
            ntasks: 2,
            ..Default::default()
        };
        let out = tensor_complete_ccd(&full, &opts);
        assert!(out.rmse < 0.05, "train rmse {}", out.rmse);
    }

    #[test]
    fn ccd_rmse_is_monotone_nonincreasing() {
        let (full, _) = synth::planted_dense(&[9, 8, 7], 3, 0.1, 13);
        let out = tensor_complete_ccd(
            &full,
            &CcdOptions {
                rank: 3,
                max_sweeps: 15,
                tolerance: 0.0,
                ntasks: 1,
                ..Default::default()
            },
        );
        for w in out.rmse_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "rmse rose: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn ccd_parallel_matches_serial_exactly() {
        // row refits are independent: task count must not change results
        let (full, _) = synth::planted_dense(&[11, 9, 7], 2, 0.0, 19);
        let run = |ntasks| {
            tensor_complete_ccd(
                &full,
                &CcdOptions {
                    rank: 2,
                    max_sweeps: 5,
                    tolerance: 0.0,
                    ntasks,
                    ..Default::default()
                },
            )
        };
        let a = run(1);
        let b = run(4);
        assert!(
            (a.rmse - b.rmse).abs() < 1e-12,
            "serial {} vs parallel {}",
            a.rmse,
            b.rmse
        );
    }

    #[test]
    fn ccd_generalizes_to_held_out() {
        let (full, _) = synth::planted_dense(&[14, 12, 10], 2, 0.0, 23);
        let (train, test) = full.split_holdout(0.3, 5);
        let out = tensor_complete_ccd(
            &train,
            &CcdOptions {
                rank: 2,
                max_sweeps: 60,
                tolerance: 0.0,
                regularization: 1e-5,
                ntasks: 2,
                ..Default::default()
            },
        );
        let test_rmse = rmse_observed(&out.model, &test);
        let scale = (test.norm_squared() / test.nnz() as f64).sqrt();
        assert!(
            test_rmse < 0.1 * scale,
            "held-out rmse {test_rmse} vs scale {scale}"
        );
    }

    #[test]
    fn ccd_unobserved_rows_keep_prior_value() {
        let t = SparseTensor::from_entries(
            vec![4, 3, 3],
            &[(vec![0, 0, 0], 1.0), (vec![1, 1, 1], 2.0)],
        );
        let out = tensor_complete_ccd(
            &t,
            &CcdOptions {
                rank: 2,
                max_sweeps: 3,
                ntasks: 2,
                ..Default::default()
            },
        );
        for f in &out.model.factors {
            assert!(f.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn ccd_empty_tensor() {
        let t = SparseTensor::new(vec![3, 3, 3]);
        let out = tensor_complete_ccd(
            &t,
            &CcdOptions {
                max_sweeps: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.rmse, 0.0);
    }

    #[test]
    fn group_by_mode_is_exhaustive() {
        let t = synth::random_uniform(&[6, 5, 4], 200, 3);
        for m in 0..3 {
            let g = group_by_mode(&t, m);
            assert_eq!(g.obs.len(), 200);
            assert_eq!(*g.row_ptr.last().unwrap(), 200);
            for i in 0..t.dims()[m] {
                for &xi in &g.obs[g.row_ptr[i]..g.row_ptr[i + 1]] {
                    assert_eq!(t.ind(m)[xi as usize] as usize, i);
                }
            }
        }
    }
}
