//! Naive coordinate-format reference kernels.
//!
//! These are the textbook `O(nnz * rank * order)` formulations, written
//! for obviousness rather than speed. Every optimized kernel in this crate
//! is validated against them in unit, integration, and property tests;
//! they also serve as the "no data structure" baseline in the benchmark
//! ablations.

use splatt_dense::Matrix;
use splatt_tensor::SparseTensor;

/// MTTKRP straight off the COO representation:
/// `out[i_mode][r] += val * prod_{m != mode} factors[m][i_m][r]`.
///
/// # Panics
/// Panics if factor shapes disagree with the tensor.
pub fn mttkrp_coo(tensor: &SparseTensor, factors: &[Matrix], mode: usize) -> Matrix {
    let order = tensor.order();
    assert!(mode < order, "mode out of range");
    assert_eq!(factors.len(), order, "one factor per mode required");
    let rank = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.rows(), tensor.dims()[m], "factor {m} rows mismatch");
        assert_eq!(f.cols(), rank, "factor {m} rank mismatch");
    }
    let mut out = Matrix::zeros(tensor.dims()[mode], rank);
    let mut prod = vec![0.0; rank];
    for x in 0..tensor.nnz() {
        let v = tensor.vals()[x];
        prod.iter_mut().for_each(|p| *p = v);
        for (m, factor) in factors.iter().enumerate() {
            if m == mode {
                continue;
            }
            let row = factor.row(tensor.ind(m)[x] as usize);
            for (p, &f) in prod.iter_mut().zip(row) {
                *p *= f;
            }
        }
        let orow = out.row_mut(tensor.ind(mode)[x] as usize);
        for (o, &p) in orow.iter_mut().zip(&prod) {
            *o += p;
        }
    }
    out
}

/// Dense reconstruction value of a Kruskal model (`lambda`, `factors`) at
/// one coordinate: `sum_r lambda[r] * prod_m factors[m][i_m][r]`.
pub fn kruskal_value(lambda: &[f64], factors: &[Matrix], coord: &[u32]) -> f64 {
    let rank = lambda.len();
    (0..rank)
        .map(|r| {
            lambda[r]
                * coord
                    .iter()
                    .enumerate()
                    .map(|(m, &i)| factors[m][(i as usize, r)])
                    .product::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttkrp_hand_computed_example() {
        // X with two nonzeros; rank-1 factors of ones scaled per mode.
        let t = SparseTensor::from_entries(
            vec![2, 2, 2],
            &[(vec![0, 1, 0], 2.0), (vec![1, 1, 1], 3.0)],
        );
        let factors = vec![
            Matrix::filled(2, 1, 2.0),
            Matrix::filled(2, 1, 3.0),
            Matrix::filled(2, 1, 5.0),
        ];
        // mode 0: out[0] = 2 * B[1]*C[0] = 2*3*5 = 30; out[1] = 3*3*5 = 45
        let out = mttkrp_coo(&t, &factors, 0);
        assert_eq!(out[(0, 0)], 30.0);
        assert_eq!(out[(1, 0)], 45.0);
        // mode 2: out[0] = 2 * A[0]*B[1] = 2*2*3 = 12; out[1] = 3*2*3 = 18
        let out = mttkrp_coo(&t, &factors, 2);
        assert_eq!(out[(0, 0)], 12.0);
        assert_eq!(out[(1, 0)], 18.0);
    }

    #[test]
    fn mttkrp_accumulates_duplicate_output_rows() {
        let t = SparseTensor::from_entries(
            vec![1, 2, 2],
            &[(vec![0, 0, 0], 1.0), (vec![0, 1, 1], 1.0)],
        );
        let factors = vec![
            Matrix::filled(1, 2, 1.0),
            Matrix::filled(2, 2, 1.0),
            Matrix::filled(2, 2, 1.0),
        ];
        let out = mttkrp_coo(&t, &factors, 0);
        assert_eq!(out[(0, 0)], 2.0);
        assert_eq!(out[(0, 1)], 2.0);
    }

    #[test]
    fn kruskal_value_matches_rank_sum() {
        let factors = vec![
            Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]),
        ];
        let lambda = vec![2.0, 0.5];
        // coord (1,0): 2*3*5 + 0.5*4*6 = 30 + 12 = 42
        assert_eq!(kruskal_value(&lambda, &factors, &[1, 0]), 42.0);
    }

    #[test]
    #[should_panic(expected = "mode out of range")]
    fn bad_mode_panics() {
        let t = SparseTensor::new(vec![2, 2]);
        let f = vec![Matrix::zeros(2, 1), Matrix::zeros(2, 1)];
        let _ = mttkrp_coo(&t, &f, 2);
    }
}
