//! Governed CP-ALS: the policy layer over [`try_cp_als_guarded`].
//!
//! A governed run arms a [`RunGuard`] (deadline, memory budget, stall
//! watchdog) around the ALS driver and decides what happens when the
//! guard trips:
//!
//! * **Abort** — surface [`CpalsError::Aborted`] immediately; the error
//!   carries the last durable checkpoint and the partial model.
//! * **Checkpoint** — identical trip handling, but the policy refuses to
//!   start unless per-iteration durable checkpointing is configured, so
//!   an overrun is guaranteed to leave a resumable `ckpt-*.splatt`.
//! * **Degrade** — resume from the last checkpoint under a cheaper
//!   kernel configuration and the *remaining* deadline, walking a fixed
//!   ladder: first drop output privatization and switch to the zero-copy
//!   row access (cuts replica and row-copy allocation traffic, the two
//!   biggest budget spenders), then enable mode tiling (lock-free,
//!   no-replica execution). Only when the ladder is exhausted does the
//!   original abort surface.
//!
//! The deadline is global across degradation attempts — each retry's
//! guard is armed with what is left of the original budget. The memory
//! budget, by contrast, re-baselines per attempt: the probe counters
//! measure cumulative allocation *traffic*, and a degraded retry is a
//! new run whose traffic is judged on its own.

use crate::cpals::{try_cp_als_with_team_guarded, CpalsError, CpalsOutput};
use crate::options::CpalsOptions;
use splatt_faults::FaultPlan;
use splatt_guard::{GuardConfig, RunGuard, WatchdogConfig};
use splatt_par::TaskTeam;
use splatt_tensor::SparseTensor;
use std::time::{Duration, Instant};

/// What a governed run does when its guard trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnOverrun {
    /// Stop and surface the abort (default).
    #[default]
    Abort,
    /// As `Abort`, but the run refuses to start without a configured
    /// `checkpoint_dir`, guaranteeing the abort names a durable
    /// checkpoint once an iteration has completed.
    Checkpoint,
    /// Resume from the last checkpoint with progressively cheaper kernel
    /// configurations until the run finishes or the ladder runs out.
    Degrade,
}

impl OnOverrun {
    /// Parse a CLI-style label (`abort`, `checkpoint`, `degrade`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(OnOverrun::Abort),
            "checkpoint" => Some(OnOverrun::Checkpoint),
            "degrade" => Some(OnOverrun::Degrade),
            _ => None,
        }
    }

    /// The CLI-facing label.
    pub fn label(&self) -> &'static str {
        match self {
            OnOverrun::Abort => "abort",
            OnOverrun::Checkpoint => "checkpoint",
            OnOverrun::Degrade => "degrade",
        }
    }
}

/// Governance limits for one CP-ALS run.
#[derive(Debug, Clone, Default)]
pub struct GovernancePolicy {
    /// Wall-clock budget across the whole governed run, degradation
    /// retries included.
    pub deadline: Option<Duration>,
    /// Allocation-traffic budget in bytes (per attempt; see module docs).
    pub mem_budget: Option<u64>,
    /// Arm a stall watchdog with this configuration.
    pub watchdog: Option<WatchdogConfig>,
    /// Trip response.
    pub on_overrun: OnOverrun,
}

impl GovernancePolicy {
    /// Is any limit armed? An empty policy still runs guarded (the guard
    /// costs one poll per check site) but can only trip via an external
    /// [`RunGuard::cancel`].
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.mem_budget.is_some() || self.watchdog.is_some()
    }
}

/// A governed run that completed (possibly after degradation retries).
#[derive(Debug)]
pub struct GovernedRun {
    /// The finished decomposition.
    pub output: CpalsOutput,
    /// Human-readable description of each degradation rung applied, in
    /// order; empty when the first attempt finished inside its limits.
    pub degradations: Vec<String>,
    /// Attempts made (1 = no degradation).
    pub attempts: usize,
}

/// The degradation ladder: each rung transforms the options into a
/// cheaper configuration. Returns `None` when the ladder is exhausted.
fn degrade(opts: &CpalsOptions, rung: usize) -> Option<(CpalsOptions, String)> {
    match rung {
        // Rung 1: no output privatization + zero-copy row access. Kills
        // the replica buffers and per-row copies that dominate
        // allocation traffic, at the price of lock-pool contention.
        1 => {
            let next = CpalsOptions {
                priv_threshold: 0.0,
                access: crate::mttkrp::MatrixAccess::PointerZip,
                ..opts.clone()
            };
            Some((
                next,
                "disable privatization, pointer-zip access".to_string(),
            ))
        }
        // Rung 2: mode tiling — lock-free, replica-free execution.
        2 => {
            let next = CpalsOptions {
                tiling: true,
                ..opts.clone()
            };
            Some((next, "enable mode tiling (lock-free path)".to_string()))
        }
        _ => None,
    }
}

/// Run CP-ALS under `policy`.
///
/// # Errors
/// Everything [`crate::try_cp_als`] returns, plus
/// [`CpalsError::Aborted`] when the guard trips and the policy cannot
/// (or may not) recover.
///
/// # Panics
/// As [`crate::cp_als`] on invalid options, and if
/// `policy.on_overrun == OnOverrun::Checkpoint` without
/// `opts.checkpoint_dir` (a configuration contradiction, not a runtime
/// fault).
pub fn try_cp_als_governed(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    faults: Option<&FaultPlan>,
    policy: &GovernancePolicy,
) -> Result<GovernedRun, CpalsError> {
    let team = TaskTeam::with_config(
        opts.ntasks,
        splatt_par::TeamConfig {
            spin_count: opts.spin_count,
        },
    );
    try_cp_als_governed_with_team(tensor, opts, &team, faults, policy)
}

/// [`try_cp_als_governed`] with a caller-provided task team.
///
/// # Errors
/// As [`try_cp_als_governed`].
///
/// # Panics
/// As [`try_cp_als_governed`].
pub fn try_cp_als_governed_with_team(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    team: &TaskTeam,
    faults: Option<&FaultPlan>,
    policy: &GovernancePolicy,
) -> Result<GovernedRun, CpalsError> {
    assert!(
        policy.on_overrun != OnOverrun::Checkpoint || opts.checkpoint_dir.is_some(),
        "on_overrun=checkpoint requires a checkpoint_dir"
    );

    let start = Instant::now();
    let mut attempt_opts = opts.clone();
    let mut degradations = Vec::new();
    let mut attempts = 0usize;
    let mut rung = 0usize;

    loop {
        attempts += 1;
        let guard = RunGuard::new(GuardConfig {
            deadline: policy.deadline.map(|d| d.saturating_sub(start.elapsed())),
            mem_budget: policy.mem_budget,
            watchdog: policy.watchdog,
            lanes: opts.ntasks.max(1),
        });
        let result =
            try_cp_als_with_team_guarded(tensor, &attempt_opts, team, faults, Some(&guard));
        guard.shutdown();
        let ab = match result {
            Ok(output) => {
                return Ok(GovernedRun {
                    output,
                    degradations,
                    attempts,
                })
            }
            Err(CpalsError::Aborted(ab)) => ab,
            Err(e) => return Err(e),
        };
        if policy.on_overrun != OnOverrun::Degrade {
            return Err(CpalsError::Aborted(ab));
        }
        rung += 1;
        let Some((next, what)) = degrade(&attempt_opts, rung) else {
            return Err(CpalsError::Aborted(ab)); // ladder exhausted
        };
        attempt_opts = next;
        // continue exactly where the aborted attempt durably left off
        attempt_opts.resume_from = ab.last_checkpoint.clone();
        degradations.push(format!("{} -> {}", ab.reason.label(), what));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;
    use std::time::Duration;

    fn planted() -> SparseTensor {
        synth::planted_dense(&[16, 14, 12], 3, 0.0, 11).0
    }

    fn opts() -> CpalsOptions {
        CpalsOptions {
            rank: 3,
            max_iters: 10,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        }
    }

    #[test]
    fn ungoverned_policy_just_runs() {
        let out = try_cp_als_governed(&planted(), &opts(), None, &GovernancePolicy::default())
            .expect("clean run");
        assert_eq!(out.attempts, 1);
        assert!(out.degradations.is_empty());
        assert_eq!(out.output.iterations, 10);
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let policy = GovernancePolicy {
            deadline: Some(Duration::from_secs(300)),
            ..Default::default()
        };
        let out = try_cp_als_governed(&planted(), &opts(), None, &policy).expect("clean run");
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn zero_deadline_aborts_immediately() {
        let policy = GovernancePolicy {
            deadline: Some(Duration::ZERO),
            on_overrun: OnOverrun::Abort,
            ..Default::default()
        };
        match try_cp_als_governed(&planted(), &opts(), None, &policy) {
            Err(CpalsError::Aborted(ab)) => {
                assert!(matches!(
                    ab.reason,
                    splatt_guard::TripReason::DeadlineExceeded { .. }
                ));
                assert!(ab.last_checkpoint.is_none());
                assert_eq!(ab.partial.factors.len(), 3);
            }
            other => panic!("expected Aborted, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "requires a checkpoint_dir")]
    fn checkpoint_policy_without_dir_panics() {
        let policy = GovernancePolicy {
            deadline: Some(Duration::from_secs(1)),
            on_overrun: OnOverrun::Checkpoint,
            ..Default::default()
        };
        let _ = try_cp_als_governed(&planted(), &opts(), None, &policy);
    }

    #[test]
    fn degrade_ladder_walks_and_then_surfaces_the_abort() {
        // a zero deadline trips every attempt: both rungs are tried,
        // then the ladder is exhausted and the abort surfaces
        let policy = GovernancePolicy {
            deadline: Some(Duration::ZERO),
            on_overrun: OnOverrun::Degrade,
            ..Default::default()
        };
        match try_cp_als_governed(&planted(), &opts(), None, &policy) {
            Err(CpalsError::Aborted(ab)) => {
                assert!(matches!(
                    ab.reason,
                    splatt_guard::TripReason::DeadlineExceeded { .. }
                ));
            }
            other => panic!("expected Aborted, got {other:?}"),
        }
    }

    #[test]
    fn degraded_configs_match_the_straight_fit() {
        // both rungs individually produce numerically equivalent runs
        let t = planted();
        let straight = crate::cpals::cp_als(&t, &opts());
        for rung in 1..=2 {
            let (rung_opts, _) = degrade(&opts(), rung).expect("rung exists");
            let out = crate::cpals::cp_als(&t, &rung_opts);
            assert!(
                (out.fit - straight.fit).abs() < 1e-8,
                "rung {rung}: fit {} vs {}",
                out.fit,
                straight.fit
            );
        }
        assert!(degrade(&opts(), 3).is_none(), "ladder has exactly 2 rungs");
    }

    #[test]
    fn on_overrun_parses_labels() {
        for v in [OnOverrun::Abort, OnOverrun::Checkpoint, OnOverrun::Degrade] {
            assert_eq!(OnOverrun::parse(v.label()), Some(v));
        }
        assert_eq!(OnOverrun::parse("explode"), None);
    }
}
