//! CP-ALS configuration and the paper's three implementation presets.

use crate::csf::CsfAlloc;
use crate::dispatch::TensorFormat;
use crate::mttkrp::{MatrixAccess, DEFAULT_PRIV_THRESHOLD};
use splatt_faults::RecoveryPolicy;
use splatt_locks::{LockStrategy, DEFAULT_POOL_SIZE};
use splatt_tensor::SortVariant;
use std::path::PathBuf;

/// The three code states the paper measures against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implementation {
    /// The C/OpenMP reference: pointer-arithmetic row access with
    /// check-free inner loops, atomic spin locks, fully optimized sort.
    Reference,
    /// The initial Chapel port: row accesses through array slicing
    /// (owned copies), `sync`-variable sleeping locks, allocation- and
    /// copy-heavy sort. 10-20x slower on the hot kernels (Table III).
    PortedInitial,
    /// The tuned Chapel port: pointer-style row access (bounds checks
    /// retained — the residual "high-level language" cost), atomic spin
    /// locks, optimized sort. 83-96% of the reference (Figures 5-10).
    PortedOptimized,
}

impl Implementation {
    /// Label used in the paper's tables and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Implementation::Reference => "C",
            Implementation::PortedInitial => "Chapel-initial",
            Implementation::PortedOptimized => "Chapel-optimize",
        }
    }

    /// The knob settings this preset bundles.
    pub fn knobs(self) -> (MatrixAccess, LockStrategy, SortVariant) {
        match self {
            Implementation::Reference => (
                MatrixAccess::PointerZip,
                LockStrategy::Spin,
                SortVariant::AllOpts,
            ),
            Implementation::PortedInitial => (
                MatrixAccess::RowCopy,
                LockStrategy::Sleep,
                SortVariant::Initial,
            ),
            Implementation::PortedOptimized => (
                MatrixAccess::PointerChecked,
                LockStrategy::Spin,
                SortVariant::AllOpts,
            ),
        }
    }
}

/// Factor constraint applied during ALS (SPLATT's "constrained CP").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Constraint {
    /// Unconstrained least squares.
    #[default]
    None,
    /// Nonnegative CP: each factor update is projected onto the
    /// nonnegative orthant (projected ALS). Appropriate for count- and
    /// rating-valued tensors where negative loadings are meaningless.
    NonNegative,
}

/// Full configuration for [`crate::cp_als`].
///
/// Not `Copy` (the checkpoint paths own heap data); clone or use
/// struct-update syntax on a cloned base.
#[derive(Debug, Clone, PartialEq)]
pub struct CpalsOptions {
    /// Decomposition rank `R` (the paper uses 35).
    pub rank: usize,
    /// Maximum ALS iterations (the paper runs exactly 20 by setting the
    /// tolerance to 0).
    pub max_iters: usize,
    /// Stop when the fit improves by less than this between iterations;
    /// `0.0` always runs `max_iters` iterations (paper methodology).
    pub tolerance: f64,
    /// Tasks in the team (the paper's threads/tasks axis, 1..32).
    pub ntasks: usize,
    /// Seed for factor initialization.
    pub seed: u64,
    /// Factor-row access strategy in the MTTKRP.
    pub access: MatrixAccess,
    /// Mutex-pool lock strategy.
    pub locks: LockStrategy,
    /// Locks in the pool.
    pub pool_size: usize,
    /// Sort optimization state.
    pub sort_variant: SortVariant,
    /// CSF representation allocation policy.
    pub csf_alloc: CsfAlloc,
    /// Tensor representation: flat-slab CSF (default), the ALTO
    /// linearized stream, or per-mode benchmark-driven auto dispatch
    /// (see [`crate::dispatch`]).
    pub format: TensorFormat,
    /// Baseline file driving [`TensorFormat::Auto`] decisions. `None`
    /// uses the committed repo-root `BENCH_mttkrp.json` compiled into
    /// the binary; a missing or corrupt file degrades to the generic
    /// CSF path with a typed warning instead of failing the run.
    pub dispatch_baseline: Option<PathBuf>,
    /// Privatization threshold (SPLATT default 0.02).
    pub priv_threshold: f64,
    /// Dispatch to the fixed-width MTTKRP kernels when the rank is one
    /// of [`crate::mttkrp::SPECIALIZED_RANKS`]. Bit-identical to the
    /// generic path; on by default.
    pub specialize: bool,
    /// Spin-before-park count for the task team's idle workers.
    /// Defaults to 300 — the `QT_SPINCOUNT=300` setting the paper lands
    /// on (Section V-E); pass 300 000 for Qthreads' out-of-the-box
    /// behaviour or 0 for the fifo layer.
    pub spin_count: u32,
    /// Factor constraint (SPLATT's constrained-CP support).
    pub constraint: Constraint,
    /// Use mode tiling for modes whose MTTKRP would otherwise need
    /// locks or privatization (SPLATT's tiling option; the paper's
    /// future-work item). Tiles are bound to the task count.
    pub tiling: bool,
    /// Collect a [`splatt_probe::ProfileReport`] during the run:
    /// per-routine times (Table III rows), per-thread MTTKRP busy time,
    /// lock-pool contention, allocation counters, and the span tree.
    /// Off by default; the disabled path costs one branch per probe site.
    pub profile: bool,
    /// Write a [`crate::Checkpoint`] to this directory after every
    /// completed iteration (`ckpt-NNNNN.splatt`). `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from this checkpoint file instead of random factor
    /// initialization. The resumed run continues **bit for bit** where
    /// the checkpointed run left off.
    pub resume_from: Option<PathBuf>,
    /// Seed the factors from a previous [`crate::KruskalModel`] instead
    /// of random initialization — the online-refresh warm start. The
    /// model's lambda weights are folded into mode 0, so iteration 1
    /// starts exactly at the previous solution; modes whose dimension
    /// grew since the model was fit pad the new rows with the usual
    /// seeded random values. Ignored when `resume_from` is set (a
    /// checkpoint is a strictly stronger restart).
    pub warm_start: Option<crate::KruskalModel>,
    /// Recovery knobs (retry budgets, ridge escalation, rollback cap)
    /// used when faults — injected or organic — hit the solver.
    pub recovery: RecoveryPolicy,
}

impl Default for CpalsOptions {
    fn default() -> Self {
        CpalsOptions {
            rank: 10,
            max_iters: 50,
            tolerance: 1e-5,
            ntasks: 1,
            seed: 0xC0FFEE,
            access: MatrixAccess::default(),
            locks: LockStrategy::default(),
            pool_size: DEFAULT_POOL_SIZE,
            sort_variant: SortVariant::default(),
            csf_alloc: CsfAlloc::default(),
            format: TensorFormat::default(),
            dispatch_baseline: None,
            priv_threshold: DEFAULT_PRIV_THRESHOLD,
            specialize: true,
            spin_count: 300,
            constraint: Constraint::None,
            tiling: false,
            profile: false,
            checkpoint_dir: None,
            resume_from: None,
            warm_start: None,
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl CpalsOptions {
    /// The paper's experimental protocol: rank 35, exactly 20 iterations.
    pub fn paper_protocol(ntasks: usize) -> Self {
        CpalsOptions {
            rank: 35,
            max_iters: 20,
            tolerance: 0.0,
            ntasks,
            ..Default::default()
        }
    }

    /// Apply an [`Implementation`] preset's knobs.
    pub fn with_implementation(mut self, imp: Implementation) -> Self {
        let (access, locks, sort) = imp.knobs();
        self.access = access;
        self.locks = locks;
        self.sort_variant = sort;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_bundle_expected_knobs() {
        let (a, l, s) = Implementation::Reference.knobs();
        assert_eq!(a, MatrixAccess::PointerZip);
        assert_eq!(l, LockStrategy::Spin);
        assert_eq!(s, SortVariant::AllOpts);

        let (a, l, s) = Implementation::PortedInitial.knobs();
        assert_eq!(a, MatrixAccess::RowCopy);
        assert_eq!(l, LockStrategy::Sleep);
        assert_eq!(s, SortVariant::Initial);

        let (a, _, _) = Implementation::PortedOptimized.knobs();
        assert_eq!(a, MatrixAccess::PointerChecked);
    }

    #[test]
    fn paper_protocol_matches_methodology() {
        let o = CpalsOptions::paper_protocol(32);
        assert_eq!(o.rank, 35);
        assert_eq!(o.max_iters, 20);
        assert_eq!(o.tolerance, 0.0);
        assert_eq!(o.ntasks, 32);
    }

    #[test]
    fn with_implementation_overrides_knobs() {
        let o = CpalsOptions::default().with_implementation(Implementation::PortedInitial);
        assert_eq!(o.access, MatrixAccess::RowCopy);
        assert_eq!(o.locks, LockStrategy::Sleep);
        assert_eq!(o.sort_variant, SortVariant::Initial);
        // unrelated fields untouched
        assert_eq!(o.rank, CpalsOptions::default().rank);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Implementation::Reference.label(), "C");
        assert_eq!(Implementation::PortedInitial.label(), "Chapel-initial");
        assert_eq!(Implementation::PortedOptimized.label(), "Chapel-optimize");
    }
}
