//! The CP-ALS driver (Algorithm 1 of the paper; SPLATT's `cpd_als`).
//!
//! Each iteration updates every factor matrix in turn:
//!
//! 1. `M <- MTTKRP(X, factors, mode)` — the critical kernel,
//! 2. `V <- hadamard of the other modes' Gramians`, `A <- M V^+`
//!    (the "Inverse" routine),
//! 3. column-normalize `A`, storing norms in `lambda` ("Mat norm";
//!    2-norm on the first iteration, max-norm after — SPLATT behaviour),
//! 4. refresh `A^T A` ("Mat A^TA"),
//!
//! and closes with the fit computation ("CPD fit"), which reuses the last
//! mode's MTTKRP output to get `<X, Z>` without touching the tensor again.
//! Every phase is attributed to the [`Routine`] timer the paper reports.

use crate::alto::{mttkrp_alto, uses_locks_alto};
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::dispatch::{DispatchError, FormatPlan, ModeDecision};
use crate::kruskal::KruskalModel;
use crate::mttkrp::{mttkrp, uses_locks, MttkrpConfig, MttkrpWorkspace};
use crate::options::CpalsOptions;
use splatt_dense::{
    hadamard_assign, mat_ata, normalize_columns, solve_normals, solve_normals_ridge, MatNorm,
    Matrix, RidgeOutcome,
};
use splatt_faults::{FaultKind, FaultPlan, FaultRecord, RecoveryAction};
use splatt_guard::{LaneSpan, RunGuard, TripReason};
use splatt_par::{Routine, TaskTeam, TimerRegistry};
use splatt_probe::{
    DispatchRow, FaultRow, GuardRow, MttkrpProbe, ProfileReport, RoutineRow, SpanNode,
};
use splatt_tensor::SparseTensor;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a CP-ALS run.
#[derive(Debug)]
pub struct CpalsOutput {
    /// The fitted Kruskal model.
    pub model: KruskalModel,
    /// Final fit (`1 - ||X - Z||_F / ||X||_F`).
    pub fit: f64,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Fit after each iteration.
    pub fits: Vec<f64>,
    /// Per-routine wall-clock timers (the paper's Table III instrument).
    pub timers: TimerRegistry,
    /// Full observability report, present when
    /// [`CpalsOptions::profile`] was set.
    pub profile: Option<ProfileReport>,
    /// Per-mode format/kernel decisions the run actually executed with
    /// (see [`crate::dispatch`]); one entry per tensor mode.
    pub dispatch: Vec<ModeDecision>,
    /// Set when [`crate::dispatch::TensorFormat::Auto`] (or a forced
    /// ALTO request on an unsupported tensor) degraded to the generic
    /// CSF fallback instead of failing the run.
    pub dispatch_warning: Option<DispatchError>,
}

/// A CP-ALS run that could not complete.
#[derive(Debug)]
pub enum CpalsError {
    /// Checkpoint write, read, or validation failed.
    Checkpoint(CheckpointError),
    /// A fault exhausted its recovery budget (retries, ridge escalations,
    /// or iteration rollbacks).
    Unrecovered {
        /// The fault kind that could not be recovered.
        kind: FaultKind,
        /// ALS iteration the fault hit.
        iteration: usize,
        /// Injection site (e.g. `mode 1 gram`).
        site: String,
    },
    /// The run guard tripped (deadline, memory budget, cancellation, or
    /// watchdog stall) and the run aborted cooperatively.
    Aborted(Box<RunAborted>),
}

/// What a governed run leaves behind when its guard trips.
///
/// Everything needed to continue is here: the checkpoint the run last
/// wrote (resume bit-for-bit from it) and the in-memory partial model
/// (usable directly when no checkpoint directory was configured, though
/// its factors may reflect an incomplete iteration).
#[derive(Debug)]
pub struct RunAborted {
    /// Why the guard tripped.
    pub reason: TripReason,
    /// The 1-based count of the ALS iteration in flight when the run
    /// stopped (equals the would-be `CpalsOutput::iterations`).
    pub iteration: usize,
    /// Most recent durable checkpoint, if any: the file written by this
    /// run, or the `resume_from` path when the run aborted before
    /// completing a fresh iteration.
    pub last_checkpoint: Option<PathBuf>,
    /// Factor state at the abort point. Valid matrices, but mid-iteration
    /// modes may already reflect partial updates — prefer
    /// `last_checkpoint` for exact resumption.
    pub partial: KruskalModel,
}

impl std::fmt::Display for CpalsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpalsError::Checkpoint(e) => write!(f, "{e}"),
            CpalsError::Unrecovered {
                kind,
                iteration,
                site,
            } => write!(
                f,
                "unrecovered {} fault at iteration {iteration} ({site})",
                kind.label()
            ),
            CpalsError::Aborted(ab) => write!(
                f,
                "run aborted at iteration {}: {}{}",
                ab.iteration,
                ab.reason,
                match &ab.last_checkpoint {
                    Some(p) => format!(" (last checkpoint: {})", p.display()),
                    None => String::new(),
                }
            ),
        }
    }
}

impl std::error::Error for CpalsError {}

impl From<CheckpointError> for CpalsError {
    fn from(e: CheckpointError) -> Self {
        CpalsError::Checkpoint(e)
    }
}

/// Restores the global allocation-tracking state on every exit path
/// (including the early `?` returns of the fallible driver).
struct AllocTracking {
    before: splatt_probe::alloc::AllocStats,
    was_enabled: bool,
}

impl Drop for AllocTracking {
    fn drop(&mut self) {
        if !self.was_enabled {
            splatt_probe::alloc::disable();
        }
    }
}

/// Time `f` under `which`, and — when a span parent is given — append a
/// leaf with the same wall time under `label`.
fn span_time<R>(
    timers: &TimerRegistry,
    which: Routine,
    parent: Option<(&mut SpanNode, &str)>,
    f: impl FnOnce() -> R,
) -> R {
    match parent {
        None => timers.time(which, f),
        Some((node, label)) => {
            let start = Instant::now();
            let out = timers.time(which, f);
            node.push(SpanNode::leaf(label, start.elapsed().as_nanos() as u64));
            out
        }
    }
}

/// Run CP-ALS on `tensor` under `opts`.
///
/// Duplicate coordinates are legal and their values sum inside the
/// kernels, but the reported *fit* normalizes by the stored-entry norm —
/// like SPLATT, this solver assumes coalesced input. Call
/// [`SparseTensor::coalesce`] first if your tensor may contain
/// duplicates and you care about the fit value.
///
/// # Panics
/// Panics if `opts.rank == 0`, `opts.ntasks == 0`, or `opts.max_iters == 0`,
/// and if checkpointing or resume was requested and fails — use
/// [`try_cp_als`] for a fallible run.
pub fn cp_als(tensor: &SparseTensor, opts: &CpalsOptions) -> CpalsOutput {
    let team = TaskTeam::with_config(
        opts.ntasks,
        splatt_par::TeamConfig {
            spin_count: opts.spin_count,
        },
    );
    cp_als_with_team(tensor, opts, &team)
}

/// [`cp_als`] with a caller-provided task team (reused across runs in the
/// benchmark harness to avoid re-spawning workers).
///
/// # Panics
/// As [`cp_als`]; additionally if `team.ntasks() != opts.ntasks`.
pub fn cp_als_with_team(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    team: &TaskTeam,
) -> CpalsOutput {
    try_cp_als_with_team(tensor, opts, team, None).unwrap_or_else(|e| panic!("cp_als: {e}"))
}

/// Fallible CP-ALS with optional fault injection: [`cp_als`] that reports
/// checkpoint I/O failures and exhausted fault recovery as typed errors
/// instead of panicking.
///
/// When `faults` is given, the plan's seeded fault sites fire during the
/// run and every injected fault plus its recovery action is appended to
/// the plan's event log (and to the profile report when
/// [`CpalsOptions::profile`] is set).
///
/// # Errors
/// [`CpalsError::Checkpoint`] if `opts.resume_from` cannot be read or
/// validated, or a checkpoint write to `opts.checkpoint_dir` fails;
/// [`CpalsError::Unrecovered`] if an injected fault exhausts the bounds in
/// `opts.recovery`.
///
/// # Panics
/// As [`cp_als`] on invalid options (programmer error, not runtime faults).
pub fn try_cp_als(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    faults: Option<&FaultPlan>,
) -> Result<CpalsOutput, CpalsError> {
    try_cp_als_guarded(tensor, opts, faults, None)
}

/// [`try_cp_als`] under run governance: when `guard` is given, the
/// driver checks it at every iteration and mode boundary (and the
/// kernels beneath poll it at tile/chunk granularity), aborting into
/// [`CpalsError::Aborted`] with the last durable checkpoint and the
/// partial model once the guard trips. The driver heartbeats lane 0 for
/// the guard's watchdog across the iteration loop; kernel tasks
/// heartbeat their own lanes.
///
/// # Errors
/// As [`try_cp_als`], plus [`CpalsError::Aborted`] on a guard trip.
///
/// # Panics
/// As [`cp_als`] on invalid options.
pub fn try_cp_als_guarded(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    faults: Option<&FaultPlan>,
    guard: Option<&RunGuard>,
) -> Result<CpalsOutput, CpalsError> {
    let team = TaskTeam::with_config(
        opts.ntasks,
        splatt_par::TeamConfig {
            spin_count: opts.spin_count,
        },
    );
    try_cp_als_with_team_guarded(tensor, opts, &team, faults, guard)
}

/// [`try_cp_als`] with a caller-provided task team.
///
/// # Errors
/// As [`try_cp_als`].
///
/// # Panics
/// As [`cp_als_with_team`] on invalid options.
pub fn try_cp_als_with_team(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    team: &TaskTeam,
    faults: Option<&FaultPlan>,
) -> Result<CpalsOutput, CpalsError> {
    try_cp_als_with_team_guarded(tensor, opts, team, faults, None)
}

/// Builds the `Aborted` error from the driver's loop state at a guard
/// trip. The factor clones are the price of handing back a usable
/// partial model; aborts are cold.
fn abort_error(
    reason: TripReason,
    iteration: usize,
    last_checkpoint: &Option<PathBuf>,
    lambda: &[f64],
    factors: &[Matrix],
) -> CpalsError {
    CpalsError::Aborted(Box::new(RunAborted {
        reason,
        iteration,
        last_checkpoint: last_checkpoint.clone(),
        partial: KruskalModel {
            lambda: lambda.to_vec(),
            factors: factors.to_vec(),
        },
    }))
}

/// [`try_cp_als_guarded`] with a caller-provided task team.
///
/// # Errors
/// As [`try_cp_als_guarded`].
///
/// # Panics
/// As [`cp_als_with_team`] on invalid options.
pub fn try_cp_als_with_team_guarded(
    tensor: &SparseTensor,
    opts: &CpalsOptions,
    team: &TaskTeam,
    faults: Option<&FaultPlan>,
    guard: Option<&RunGuard>,
) -> Result<CpalsOutput, CpalsError> {
    assert!(opts.rank > 0, "rank must be positive");
    assert!(opts.max_iters > 0, "max_iters must be positive");
    assert_eq!(team.ntasks(), opts.ntasks, "team size must match options");

    let timers = TimerRegistry::new();
    let order = tensor.order();
    let rank = opts.rank;

    // ---- pre-processing: sort + representation construction. The plan
    // resolves `opts.format` (forced CSF/ALTO or benchmark-driven auto)
    // into per-mode decisions and builds only the formats they need ----
    let plan = FormatPlan::build_timed_guarded(tensor, opts, team, &timers, guard);
    // optional mode tiling for the CSF modes that would otherwise
    // scatter — ALTO modes carry their own privatize/locks machinery
    // (sorting inside the tile build is attributed to the Sort timer)
    let tiled: Vec<Option<crate::tiling::TiledCsf>> = if opts.tiling {
        (0..order)
            .map(|m| {
                if plan.is_alto(m) {
                    return None;
                }
                match plan.set.as_ref().map(|s| s.for_mode(m).1) {
                    None | Some(crate::csf::KernelKind::Root) => None,
                    Some(_) => Some(timers.time(Routine::Sort, || {
                        crate::tiling::TiledCsf::build_guarded(
                            tensor,
                            m,
                            opts.ntasks,
                            team,
                            opts.sort_variant,
                            guard,
                        )
                    })),
                }
            })
            .collect()
    } else {
        (0..order).map(|_| None).collect()
    };

    let mtt_cfg = MttkrpConfig {
        access: opts.access,
        locks: opts.locks,
        pool_size: opts.pool_size,
        priv_threshold: opts.priv_threshold,
        specialize: opts.specialize,
    };
    // Per-mode kernel config: the dispatcher may veto rank-specialized
    // dispatch mode by mode (a measured-slower specialization cell).
    let mode_cfgs: Vec<MttkrpConfig> = plan
        .decisions
        .iter()
        .map(|d| MttkrpConfig {
            specialize: d.specialize,
            ..mtt_cfg
        })
        .collect();
    let mut ws = MttkrpWorkspace::new(&mtt_cfg, opts.ntasks);
    ws.set_guard(guard.cloned());

    // ---- observability (tentpole): probes are attached only on request,
    // so the unprofiled hot path pays one `Option` branch per site ----
    let probe = if opts.profile {
        let p = Arc::new(MttkrpProbe::new(opts.ntasks));
        ws.set_probe(Some(Arc::clone(&p)));
        Some(p)
    } else {
        None
    };
    let alloc_before = opts.profile.then(|| {
        let was_enabled = splatt_probe::alloc::enabled();
        splatt_probe::alloc::enable();
        AllocTracking {
            before: splatt_probe::alloc::snapshot(),
            was_enabled,
        }
    });
    let mut span_root = opts.profile.then(|| SpanNode::new("CPD total"));

    // ---- initialization: uniform random factors (SPLATT), the exact
    // state of a prior run when resuming from a checkpoint, or a previous
    // Kruskal model when warm-starting an online refresh ----
    let mut start_iter = 0usize;
    let mut fits = Vec::with_capacity(opts.max_iters);
    let mut oldfit = 0.0;
    let mut lambda = vec![0.0; rank];
    let factors_init: Vec<Matrix>;
    if let Some(path) = &opts.resume_from {
        let ck = Checkpoint::read_from(path)?;
        ck.validate(tensor.dims(), rank, opts.max_iters)?;
        start_iter = ck.iteration;
        lambda = ck.lambda;
        fits = ck.fits;
        oldfit = fits.last().copied().unwrap_or(0.0);
        factors_init = ck.factors;
    } else if let Some(model) = &opts.warm_start {
        assert_eq!(model.rank(), rank, "warm-start model rank mismatch");
        assert_eq!(
            model.order(),
            tensor.order(),
            "warm-start model order mismatch"
        );
        // Fold lambda into mode 0 so the starting point *is* the model;
        // the first iteration re-normalizes as usual. Rows past the
        // model's dimension (modes grown by merged deltas) take the
        // seeded random values a cold start would give them.
        factors_init = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| {
                let old = &model.factors[m];
                assert!(
                    old.rows() <= d,
                    "warm-start model mode {m} is larger than the tensor"
                );
                let mut f = Matrix::random(d, rank, opts.seed.wrapping_add(m as u64));
                for i in 0..old.rows() {
                    let src = old.row(i);
                    let dst = f.row_mut(i);
                    for r in 0..rank {
                        dst[r] = if m == 0 {
                            model.lambda[r] * src[r]
                        } else {
                            src[r]
                        };
                    }
                }
                f
            })
            .collect();
    } else {
        factors_init = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, opts.seed.wrapping_add(m as u64)))
            .collect();
    }
    let mut factors = factors_init;
    // Gramians are recomputed rather than checkpointed: `mat_ata` is
    // deterministic, so the resumed values are bit-identical anyway.
    let mut ata: Vec<Matrix> = factors
        .iter()
        .map(|f| timers.time(Routine::AtA, || mat_ata(f)))
        .collect();
    let mut mout: Vec<Matrix> = tensor
        .dims()
        .iter()
        .map(|&d| Matrix::zeros(d, rank))
        .collect();

    let norm_x_sq = tensor.norm_squared();
    let policy = opts.recovery;
    let mut iterations = start_iter;
    let mut rollbacks_used = 0u32;
    // the resume source counts as "last durable state" until this run
    // writes a checkpoint of its own
    let mut last_checkpoint: Option<PathBuf> = opts.resume_from.clone();

    // The driver occupies watchdog lane 0 for the whole iteration loop
    // (entered only now — CSF builds heartbeat through the sort kernels,
    // and an idle lane is never reported). Kernel tasks nest into their
    // own lanes; lane occupancy is a counter, so the spans compose.
    let _driver_lane = LaneSpan::enter(guard, 0);

    let loop_start = Instant::now();
    let mut it = start_iter;
    while it < opts.max_iters {
        iterations = it + 1;
        if let Some(g) = guard {
            if let Err(reason) = g.check(0) {
                return Err(abort_error(
                    reason,
                    iterations,
                    &last_checkpoint,
                    &lambda,
                    &factors,
                ));
            }
        }
        // iteration-entry snapshot: the rollback target when a NaN guard
        // fires; only taken when faults can actually be injected
        let snapshot = faults
            .is_some()
            .then(|| (factors.clone(), lambda.clone(), ata.clone()));
        let iter_start = Instant::now();
        let mut iter_node = span_root
            .is_some()
            .then(|| SpanNode::new(format!("iteration {it}")));
        // set when non-finite state is detected (kind, site of the poison)
        let mut poisoned: Option<(FaultKind, String)> = None;
        for mode in 0..order {
            if let Some(g) = guard {
                if let Err(reason) = g.check(0) {
                    return Err(abort_error(
                        reason,
                        iterations,
                        &last_checkpoint,
                        &lambda,
                        &factors,
                    ));
                }
            }
            let mode_start = Instant::now();
            let mut mode_node = iter_node
                .is_some()
                .then(|| SpanNode::new(format!("mode {mode}")));
            // straggler fault: one task is late; the team absorbs the delay
            // (clamped so a recovery sleep can never outlive the deadline)
            if let Some(plan) = faults {
                if plan.roll(FaultKind::Straggler, it, mode, 0) {
                    let delay = Duration::from_nanos(plan.straggler_delay_nanos(it, mode));
                    let delay = guard.map_or(delay, |g| g.clamp_sleep(delay));
                    std::thread::sleep(delay);
                    plan.record(FaultRecord {
                        kind: FaultKind::Straggler,
                        iteration: it,
                        site: format!("mode {mode} mttkrp"),
                        action: RecoveryAction::AbsorbedDelay {
                            nanos: delay.as_nanos() as u64,
                        },
                    });
                }
            }
            span_time(
                &timers,
                Routine::Mttkrp,
                mode_node.as_mut().map(|n| (n, "mttkrp")),
                || {
                    if let Some(tc) = &tiled[mode] {
                        crate::mttkrp::mttkrp_tiled_guarded(
                            tc,
                            &factors,
                            &mut mout[mode],
                            team,
                            &mode_cfgs[mode],
                            guard,
                        );
                    } else if plan.is_alto(mode) {
                        mttkrp_alto(
                            plan.alto.as_ref().expect("ALTO modes carry an ALTO build"),
                            &factors,
                            mode,
                            &mut mout[mode],
                            &mut ws,
                            team,
                            &mode_cfgs[mode],
                        );
                    } else {
                        mttkrp(
                            plan.set.as_ref().expect("CSF modes carry a CSF build"),
                            &factors,
                            mode,
                            &mut mout[mode],
                            &mut ws,
                            team,
                            &mode_cfgs[mode],
                        );
                    }
                },
            );
            // a tripped guard may have cancelled the kernel mid-scatter;
            // abort before the partial MTTKRP output is consumed
            if let Some(g) = guard {
                if let Err(reason) = g.check(0) {
                    return Err(abort_error(
                        reason,
                        iterations,
                        &last_checkpoint,
                        &lambda,
                        &factors,
                    ));
                }
            }
            // kernel-boundary poison: corrupt one MTTKRP output entry; the
            // NaN guard below detects it and rolls the iteration back
            if let Some(plan) = faults {
                let len = mout[mode].as_slice().len();
                if len > 0 && plan.roll(FaultKind::NanPoison, it, mode, 0) {
                    let idx = plan.target_index(FaultKind::NanPoison, it, mode, len);
                    mout[mode].as_mut_slice()[idx] = f64::NAN;
                }
            }

            span_time(
                &timers,
                Routine::Inverse,
                mode_node.as_mut().map(|n| (n, "inverse")),
                || -> Result<(), CpalsError> {
                    // V = hadamard of the other Gramians (Algorithm 1 lines 4/7/10)
                    let mut v = Matrix::filled(rank, rank, 1.0);
                    for (m, g) in ata.iter().enumerate() {
                        if m != mode {
                            hadamard_assign(&mut v, g);
                        }
                    }
                    // A <- M V^+ (Cholesky fast path, eigen pseudo-inverse fallback)
                    factors[mode]
                        .as_mut_slice()
                        .copy_from_slice(mout[mode].as_slice());
                    let inject_nonspd = faults
                        .map(|p| p.roll(FaultKind::NonSpdGram, it, mode, 0))
                        .unwrap_or(false);
                    if inject_nonspd {
                        let plan = faults.expect("injection implies a plan");
                        // knock one diagonal entry below zero: V is no
                        // longer positive definite and plain Cholesky fails
                        let j = plan.target_index(FaultKind::NonSpdGram, it, mode, rank);
                        let trace: f64 = (0..rank).map(|i| v[(i, i)].abs()).sum();
                        v[(j, j)] = -(1.0 + trace);
                        let site = format!("mode {mode} gram");
                        let outcome = solve_normals_ridge(
                            &v,
                            &mut factors[mode],
                            policy.ridge_base,
                            policy.ridge_growth,
                            policy.max_ridge_attempts,
                        );
                        let action = match outcome {
                            RidgeOutcome::Cholesky => RecoveryAction::Regularized {
                                ridge: 0.0,
                                attempts: 0,
                            },
                            RidgeOutcome::Regularized { ridge, attempts } => {
                                RecoveryAction::Regularized { ridge, attempts }
                            }
                            RidgeOutcome::Failed { .. } => RecoveryAction::Unrecovered,
                        };
                        let fatal = action == RecoveryAction::Unrecovered;
                        plan.record(FaultRecord {
                            kind: FaultKind::NonSpdGram,
                            iteration: it,
                            site: site.clone(),
                            action,
                        });
                        if fatal {
                            return Err(CpalsError::Unrecovered {
                                kind: FaultKind::NonSpdGram,
                                iteration: it,
                                site,
                            });
                        }
                    } else {
                        solve_normals(&v, &mut factors[mode]);
                    }
                    if opts.constraint == crate::options::Constraint::NonNegative {
                        // projected ALS: clamp onto the nonnegative orthant
                        for val in factors[mode].as_mut_slice() {
                            if *val < 0.0 {
                                *val = 0.0;
                            }
                        }
                    }
                    Ok(())
                },
            )?;

            // NaN guard at the kernel boundary: non-finite factor state
            // aborts the iteration and rolls back to the entry snapshot
            if faults.is_some() && !factors[mode].as_slice().iter().all(|x| x.is_finite()) {
                poisoned = Some((FaultKind::NanPoison, format!("mode {mode} factor")));
                break;
            }

            span_time(
                &timers,
                Routine::MatNorm,
                mode_node.as_mut().map(|n| (n, "norm")),
                || {
                    let which = if it == 0 { MatNorm::Two } else { MatNorm::Max };
                    normalize_columns(&mut factors[mode], &mut lambda, which);
                },
            );

            span_time(
                &timers,
                Routine::AtA,
                mode_node.as_mut().map(|n| (n, "ata")),
                || {
                    ata[mode] = mat_ata(&factors[mode]);
                },
            );

            // the Gram refresh behaves as a collective in the distributed
            // variant; a dropped one is retried with exponential backoff
            if let Some(plan) = faults {
                let site = || format!("mode {mode} ata allreduce");
                let mut attempts = 0u32;
                while plan.roll(FaultKind::DroppedCollective, it, mode, attempts) {
                    attempts += 1;
                    if attempts > policy.max_retries {
                        plan.record(FaultRecord {
                            kind: FaultKind::DroppedCollective,
                            iteration: it,
                            site: site(),
                            action: RecoveryAction::Unrecovered,
                        });
                        return Err(CpalsError::Unrecovered {
                            kind: FaultKind::DroppedCollective,
                            iteration: it,
                            site: site(),
                        });
                    }
                    // bound the recovery backoff by the active deadline:
                    // a retry sleep must never be what blows the budget
                    let backoff = policy.backoff_duration(attempts - 1);
                    std::thread::sleep(guard.map_or(backoff, |g| g.clamp_sleep(backoff)));
                }
                if attempts > 0 {
                    plan.record(FaultRecord {
                        kind: FaultKind::DroppedCollective,
                        iteration: it,
                        site: site(),
                        action: RecoveryAction::Retried {
                            attempts,
                            backoff_nanos: policy.total_backoff_nanos(attempts),
                        },
                    });
                }
            }

            if let (Some(iter), Some(mut node)) = (iter_node.as_mut(), mode_node) {
                node.nanos = mode_start.elapsed().as_nanos() as u64;
                iter.push(node);
            }
        }

        let fit = if poisoned.is_none() {
            let fit = span_time(
                &timers,
                Routine::Fit,
                iter_node.as_mut().map(|n| (n, "fit")),
                || {
                    compute_fit(
                        norm_x_sq,
                        &lambda,
                        &ata,
                        &factors[order - 1],
                        &mout[order - 1],
                    )
                },
            );
            if !fit.is_finite() {
                poisoned = Some((FaultKind::NanPoison, "fit".to_string()));
            }
            fit
        } else {
            0.0
        };

        if let Some((kind, site)) = poisoned {
            // organic non-finite values (no fault plan, so no snapshot to
            // roll back to, and a replay would poison identically anyway)
            // surface as a typed error instead of entering recovery
            let Some(plan) = faults else {
                return Err(CpalsError::Unrecovered {
                    kind,
                    iteration: it,
                    site,
                });
            };
            // roll the iteration back to its entry snapshot and re-execute;
            // one-shot injection sites guarantee the replay runs clean
            let (f, l, a) = snapshot.expect("a fault plan implies a snapshot");
            factors = f;
            lambda = l;
            ata = a;
            rollbacks_used += 1;
            if rollbacks_used > policy.max_rollbacks {
                plan.record(FaultRecord {
                    kind,
                    iteration: it,
                    site: site.clone(),
                    action: RecoveryAction::Unrecovered,
                });
                return Err(CpalsError::Unrecovered {
                    kind,
                    iteration: it,
                    site,
                });
            }
            plan.record(FaultRecord {
                kind,
                iteration: it,
                site,
                action: RecoveryAction::RolledBack { to_iteration: it },
            });
            continue; // re-run iteration `it` from the snapshot
        }
        fits.push(fit);

        if let (Some(root), Some(mut node)) = (span_root.as_mut(), iter_node) {
            node.nanos = iter_start.elapsed().as_nanos() as u64;
            root.push(node);
        }

        // durable checkpoint after every completed iteration: `iteration`
        // counts completed iterations, so resume starts at `it + 1`
        if let Some(dir) = &opts.checkpoint_dir {
            last_checkpoint = Some(
                Checkpoint {
                    iteration: it + 1,
                    lambda: lambda.clone(),
                    fits: fits.clone(),
                    factors: factors.clone(),
                }
                .write_to_dir(dir)?,
            );
        }

        if opts.tolerance > 0.0 && it > 0 && (fit - oldfit).abs() < opts.tolerance {
            break;
        }
        oldfit = fit;
        it += 1;
    }
    timers.add(Routine::CpdTotal, loop_start.elapsed());

    let profile = probe.map(|p| {
        let tracking = alloc_before.as_ref().expect("probe implies alloc snapshot");
        let alloc = splatt_probe::alloc::snapshot().since(&tracking.before);
        let mut span = span_root.take().expect("probe implies span root");
        span.nanos = loop_start.elapsed().as_nanos() as u64;
        let used_locks = (0..order).any(|m| {
            if tiled[m].is_some() {
                return false;
            }
            if plan.is_alto(m) {
                uses_locks_alto(
                    plan.alto.as_ref().expect("ALTO modes carry an ALTO build"),
                    m,
                    opts.ntasks,
                    &mode_cfgs[m],
                )
            } else {
                uses_locks(
                    plan.set.as_ref().expect("CSF modes carry a CSF build"),
                    m,
                    opts.ntasks,
                    &mode_cfgs[m],
                )
            }
        });
        ProfileReport {
            ntasks: opts.ntasks,
            rank,
            iterations,
            lock_strategy: opts.locks.label().to_string(),
            used_locks,
            dispatch: plan
                .decisions
                .iter()
                .map(|d| DispatchRow {
                    mode: d.mode,
                    format: d.format.label().to_string(),
                    kernel: d.kernel.to_string(),
                    sync: d.sync.to_string(),
                    specialize: d.specialize,
                    source: d.source.label().to_string(),
                })
                .collect(),
            routines: Routine::ALL
                .iter()
                .map(|&r| RoutineRow {
                    routine: r.label().to_string(),
                    seconds: timers.seconds(r),
                })
                .collect(),
            threads: p.tasks.snapshot(),
            locks: p.locks.snapshot(),
            alloc,
            span,
            faults: faults
                .map(|plan| {
                    plan.events()
                        .iter()
                        .map(|e| FaultRow {
                            kind: e.kind.label().to_string(),
                            iteration: e.iteration,
                            site: e.site.clone(),
                            action: e.action.describe(),
                        })
                        .collect()
                })
                .unwrap_or_default(),
            guard: guard.map(|g| {
                let snap = g.snapshot();
                GuardRow {
                    checks: snap.checks,
                    trips: snap.trips,
                    watchdog_reports: snap.watchdog_reports,
                    watchdog_samples: snap.watchdog_samples,
                    trip: snap.trip.map(|t| t.to_string()).unwrap_or_default(),
                }
            }),
            serve: None,
            store: None,
            refresh: None,
        }
    });

    Ok(CpalsOutput {
        model: KruskalModel { lambda, factors },
        fit: fits.last().copied().unwrap_or(0.0),
        iterations,
        fits,
        timers,
        profile,
        dispatch: plan.decisions,
        dispatch_warning: plan.warning,
    })
}

/// SPLATT's `kruskal_calc_fit`: `fit = 1 - sqrt(normX^2 + normZ^2 -
/// 2 <X, Z>) / normX`, with `<X, Z>` recovered from the final mode's
/// MTTKRP output (`<X, Z> = sum_{i,r} M[i,r] * A[i,r] * lambda[r]`) and
/// `normZ^2` from the Gramians.
fn compute_fit(
    norm_x_sq: f64,
    lambda: &[f64],
    ata: &[Matrix],
    last_factor: &Matrix,
    last_mout: &Matrix,
) -> f64 {
    if norm_x_sq == 0.0 {
        return 0.0;
    }
    let rank = lambda.len();

    // normZ^2 = lambda^T (hadamard of all Gramians) lambda
    let mut had = Matrix::filled(rank, rank, 1.0);
    for g in ata {
        hadamard_assign(&mut had, g);
    }
    let mut norm_z_sq = 0.0;
    for r in 0..rank {
        for s in 0..rank {
            norm_z_sq += lambda[r] * had[(r, s)] * lambda[s];
        }
    }

    // <X, Z> from the last MTTKRP output and the (normalized) last factor
    let mut inner = 0.0;
    for i in 0..last_factor.rows() {
        let frow = last_factor.row(i);
        let mrow = last_mout.row(i);
        for ((&f, &m), &l) in frow.iter().zip(mrow).zip(lambda) {
            inner += f * m * l;
        }
    }

    let residual_sq = (norm_x_sq + norm_z_sq - 2.0 * inner).max(0.0);
    1.0 - residual_sq.sqrt() / norm_x_sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Implementation;
    use splatt_tensor::synth;

    #[test]
    fn recovers_planted_low_rank_tensor() {
        // fully dense planted tensor: exactly rank-3, so fit must -> 1
        let (tensor, _) = synth::planted_dense(&[25, 20, 15], 3, 0.0, 42);
        let opts = CpalsOptions {
            rank: 3,
            max_iters: 60,
            tolerance: 1e-9,
            ntasks: 2,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert!(out.fit > 0.97, "fit {} too low", out.fit);
    }

    #[test]
    fn forced_alto_format_matches_csf_fit_bitwise() {
        use crate::dispatch::{FormatChoice, TensorFormat};
        let (tensor, _) = synth::planted_low_rank(&[22, 18, 14], 3, 1_500, 0.05, 11);
        let base = CpalsOptions {
            rank: 4,
            max_iters: 10,
            tolerance: 0.0,
            ntasks: 1,
            // ALTO's dim-sorted linearization mirrors the One-tree CSF;
            // Two/All allocs root other modes and reorder the fp ops.
            csf_alloc: crate::csf::CsfAlloc::One,
            ..Default::default()
        };
        let csf = cp_als(&tensor, &base);
        let alto = cp_als(
            &tensor,
            &CpalsOptions {
                format: TensorFormat::Alto,
                ..base.clone()
            },
        );
        // Same dim-sorted mode order, same deterministic sort, same fp
        // op sequence: the two formats must agree bit for bit.
        assert_eq!(csf.fits, alto.fits);
        assert!(alto.dispatch.iter().all(|d| d.format == FormatChoice::Alto));
        assert!(alto.dispatch_warning.is_none());
        for (a, b) in csf.model.factors.iter().zip(alto.model.factors.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn auto_format_records_decisions_in_profile() {
        use crate::dispatch::{DecisionSource, TensorFormat};
        let tensor = synth::power_law(&[24, 20, 16], 1_200, 1.5, 13);
        let opts = CpalsOptions {
            rank: 8,
            max_iters: 2,
            tolerance: 0.0,
            ntasks: 2,
            format: TensorFormat::Auto,
            profile: true,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert_eq!(out.dispatch.len(), tensor.order());
        let profile = out.profile.expect("profile requested");
        assert_eq!(profile.dispatch.len(), tensor.order());
        for (d, row) in out.dispatch.iter().zip(profile.dispatch.iter()) {
            assert_eq!(row.mode, d.mode);
            assert_eq!(row.format, d.format.label());
            assert_eq!(row.kernel, d.kernel);
            assert_eq!(row.sync, d.sync);
            assert_eq!(row.specialize, d.specialize);
            assert_eq!(row.source, d.source.label());
        }
        // a readable committed baseline yields genuine auto decisions;
        // a corrupt one degrades — either way the run completes
        if out.dispatch_warning.is_none() {
            assert!(out
                .dispatch
                .iter()
                .all(|d| d.source == DecisionSource::Auto));
        }
    }

    #[test]
    fn corrupt_dispatch_baseline_degrades_to_csf_with_warning() {
        use crate::dispatch::{DecisionSource, FormatChoice, TensorFormat};
        let dir = std::env::temp_dir().join("splatt-cpals-corrupt-baseline");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let (tensor, _) = synth::planted_low_rank(&[16, 12, 10], 2, 600, 0.0, 3);
        let opts = CpalsOptions {
            rank: 4,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 1,
            format: TensorFormat::Auto,
            dispatch_baseline: Some(path),
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert!(out.dispatch_warning.is_some(), "corrupt baseline must warn");
        for d in &out.dispatch {
            assert_eq!(d.format, FormatChoice::Csf);
            assert_eq!(d.source, DecisionSource::Fallback);
            assert!(!d.specialize, "fallback runs the generic kernels");
        }
        // and the degraded run still completes like any CSF run
        assert_eq!(out.iterations, 3);
        assert!(out.fit.is_finite());
    }

    #[test]
    fn overcomplete_rank_still_fits_planted_tensor() {
        // rank above the true rank must fit at least as well
        let (tensor, _) = synth::planted_dense(&[12, 10, 8], 2, 0.0, 77);
        let opts = CpalsOptions {
            rank: 5,
            max_iters: 40,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert!(out.fit > 0.95, "fit {} too low", out.fit);
    }

    #[test]
    fn fit_is_monotone_ish_and_bounded() {
        let tensor = synth::power_law(&[30, 25, 20], 2_000, 1.5, 7);
        let opts = CpalsOptions {
            rank: 8,
            max_iters: 15,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert_eq!(out.iterations, 15);
        assert_eq!(out.fits.len(), 15);
        for &f in &out.fits {
            assert!(f <= 1.0 + 1e-9, "fit {f} above 1");
        }
        // ALS is non-decreasing in exact arithmetic; allow tiny noise
        for w in out.fits.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fit decreased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn all_implementations_reach_same_fit() {
        let (tensor, _) = synth::planted_low_rank(&[18, 14, 22], 2, 1_200, 0.05, 5);
        let base = CpalsOptions {
            rank: 4,
            max_iters: 12,
            tolerance: 0.0,
            ntasks: 3,
            ..Default::default()
        };
        let fits: Vec<f64> = [
            Implementation::Reference,
            Implementation::PortedInitial,
            Implementation::PortedOptimized,
        ]
        .iter()
        .map(|&imp| cp_als(&tensor, &base.clone().with_implementation(imp)).fit)
        .collect();
        // identical arithmetic, different mechanics: fits agree closely
        assert!((fits[0] - fits[1]).abs() < 1e-8, "{fits:?}");
        assert!((fits[0] - fits[2]).abs() < 1e-8, "{fits:?}");
    }

    #[test]
    fn task_count_does_not_change_result_much() {
        let (tensor, _) = synth::planted_low_rank(&[20, 16, 12], 2, 1_000, 0.0, 9);
        let fit_of = |ntasks| {
            let opts = CpalsOptions {
                rank: 2,
                max_iters: 25,
                tolerance: 0.0,
                ntasks,
                ..Default::default()
            };
            cp_als(&tensor, &opts).fit
        };
        let f1 = fit_of(1);
        let f4 = fit_of(4);
        // MTTKRP reductions reorder float adds; fits agree to solver noise
        assert!((f1 - f4).abs() < 1e-6, "{f1} vs {f4}");
    }

    #[test]
    fn tolerance_stops_early() {
        let (tensor, _) = synth::planted_low_rank(&[15, 15, 15], 2, 800, 0.0, 3);
        let opts = CpalsOptions {
            rank: 2,
            max_iters: 200,
            tolerance: 1e-4,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert!(out.iterations < 200, "never converged");
    }

    #[test]
    fn timers_are_populated() {
        let tensor = synth::random_uniform(&[20, 20, 20], 1_000, 1);
        let opts = CpalsOptions {
            rank: 5,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        for r in [
            Routine::Mttkrp,
            Routine::Sort,
            Routine::AtA,
            Routine::MatNorm,
            Routine::Fit,
            Routine::Inverse,
            Routine::CpdTotal,
        ] {
            assert!(
                out.timers.get(r) > std::time::Duration::ZERO,
                "{r:?} never timed"
            );
        }
    }

    #[test]
    fn model_fit_matches_reported_fit() {
        let (tensor, _) = synth::planted_low_rank(&[12, 10, 14], 2, 600, 0.0, 8);
        let opts = CpalsOptions {
            rank: 2,
            max_iters: 30,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        let direct = out.model.fit_to(&tensor);
        assert!(
            (direct - out.fit).abs() < 1e-6,
            "reported fit {} vs direct {}",
            out.fit,
            direct
        );
    }

    #[test]
    fn four_mode_decomposition_works() {
        let (tensor, _) = synth::planted_dense(&[10, 8, 9, 7], 2, 0.0, 6);
        let opts = CpalsOptions {
            rank: 2,
            max_iters: 40,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert_eq!(out.model.order(), 4);
        assert!(out.fit > 0.9, "fit {}", out.fit);
    }

    #[test]
    fn tiling_matches_untiled_decomposition() {
        let tensor = synth::power_law(&[30, 18, 40], 2_500, 1.7, 29);
        let base = CpalsOptions {
            rank: 5,
            max_iters: 8,
            tolerance: 0.0,
            ntasks: 3,
            // force the non-root modes away from privatization so tiling
            // actually replaces the lock path
            priv_threshold: 0.0,
            ..Default::default()
        };
        let untiled = cp_als(&tensor, &base);
        let tiled = cp_als(
            &tensor,
            &CpalsOptions {
                tiling: true,
                ..base
            },
        );
        assert!(
            (untiled.fit - tiled.fit).abs() < 1e-8,
            "tiled fit {} vs untiled {}",
            tiled.fit,
            untiled.fit
        );
    }

    #[test]
    fn nonnegative_constraint_keeps_factors_nonnegative() {
        let tensor = synth::power_law(&[20, 15, 25], 1_500, 1.8, 13);
        let opts = CpalsOptions {
            rank: 5,
            max_iters: 10,
            tolerance: 0.0,
            ntasks: 2,
            constraint: crate::options::Constraint::NonNegative,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        for (m, f) in out.model.factors.iter().enumerate() {
            assert!(
                f.as_slice().iter().all(|&v| v >= 0.0),
                "negative entry in factor {m}"
            );
        }
        assert!(out.fit.is_finite());
    }

    #[test]
    fn nonnegative_fits_nonnegative_planted_data() {
        // planted factors are positive, so the projection should not hurt
        // the achievable fit much
        let (tensor, _) = synth::planted_dense(&[14, 12, 10], 2, 0.0, 21);
        let base = CpalsOptions {
            rank: 2,
            max_iters: 50,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let unconstrained = cp_als(&tensor, &base).fit;
        let constrained = cp_als(
            &tensor,
            &CpalsOptions {
                constraint: crate::options::Constraint::NonNegative,
                ..base
            },
        )
        .fit;
        assert!(constrained > 0.95, "constrained fit {constrained}");
        assert!(
            constrained >= unconstrained - 0.05,
            "projection cost too much: {constrained} vs {unconstrained}"
        );
    }

    #[test]
    fn profile_disabled_by_default() {
        let tensor = synth::random_uniform(&[10, 10, 10], 200, 2);
        let opts = CpalsOptions {
            rank: 2,
            max_iters: 2,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        assert!(cp_als(&tensor, &opts).profile.is_none());
    }

    #[test]
    fn profile_report_is_collected_and_consistent() {
        let tensor = synth::power_law(&[25, 20, 15], 2_000, 1.6, 11);
        let opts = CpalsOptions {
            rank: 4,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 2,
            profile: true,
            // force the lock path (no privatization) with the slicing
            // access variant so every probe family observes traffic
            priv_threshold: 0.0,
            ..Default::default()
        }
        .with_implementation(Implementation::PortedInitial);
        let out = cp_als(&tensor, &opts);
        let p = out.profile.expect("profile requested");

        assert_eq!(p.ntasks, 2);
        assert_eq!(p.rank, 4);
        assert_eq!(p.iterations, 3);
        assert_eq!(p.lock_strategy, "Sync");
        assert!(p.used_locks);
        let labels: Vec<&str> = p.routines.iter().map(|r| r.routine.as_str()).collect();
        let expect: Vec<&str> = Routine::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels, expect);
        assert!(p.cpd_seconds() > 0.0);

        // span tree: CPD total -> 3 iterations -> 3 modes + fit each
        assert_eq!(p.span.label, "CPD total");
        assert_eq!(p.span.children.len(), 3);
        for (it, iter) in p.span.children.iter().enumerate() {
            assert_eq!(iter.label, format!("iteration {it}"));
            assert_eq!(iter.children.len(), 4); // 3 modes + fit
            assert!(iter.find("fit").is_some());
            assert_eq!(iter.children[0].children.len(), 4); // kernels
        }
        // children must nest within parents up to clock slack
        assert!(p.span.is_nested(2_000_000), "span tree not nested");

        // per-thread busy time was recorded for both tasks
        assert_eq!(p.threads.threads.len(), 2);
        assert!(p.threads.busy_nanos() > 0);
        assert!(p.threads.threads.iter().all(|t| t.invocations > 0));

        // lock-pool counters balance
        assert!(p.locks.acquisitions > 0, "lock path never taken");
        assert_eq!(p.locks.acquisitions, p.locks.releases);

        // RowCopy access records slice allocations
        assert!(p.alloc.row_copies > 0);
        assert!(p.alloc.row_copy_bytes >= p.alloc.row_copies * 8);
        assert!(p.alloc.descriptor_allocs > 0);
    }

    #[test]
    fn profile_reports_privatized_runs() {
        let (tensor, _) = synth::planted_low_rank(&[16, 12, 10], 2, 800, 0.0, 4);
        let opts = CpalsOptions {
            rank: 2,
            max_iters: 2,
            tolerance: 0.0,
            ntasks: 2,
            profile: true,
            // huge threshold: every mode privatizes instead of locking
            priv_threshold: 1e12,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        let p = out.profile.expect("profile requested");
        assert!(!p.used_locks);
        assert_eq!(p.locks.acquisitions, 0);
        assert!(p.alloc.replica_reductions > 0);
        assert!(p.alloc.replica_bytes > 0);
    }

    #[test]
    fn empty_tensor_is_handled() {
        let tensor = SparseTensor::new(vec![5, 5, 5]);
        let opts = CpalsOptions {
            rank: 2,
            max_iters: 2,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert_eq!(out.fit, 0.0);
        assert!(out.model.lambda.iter().all(|l| l.is_finite()));
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_panics() {
        let tensor = SparseTensor::new(vec![5, 5, 5]);
        let opts = CpalsOptions {
            rank: 0,
            ..Default::default()
        };
        let _ = cp_als(&tensor, &opts);
    }
}
