//! Stochastic gradient descent for tensor completion.
//!
//! SPLATT's completion study (Smith, Park & Karypis, "HPC formulations of
//! optimization algorithms for tensor completion") compares ALS, SGD and
//! CCD++; this module is the SGD formulation. Each observation
//! `(i_1..i_N, v)` takes a step on the regularized squared loss:
//!
//! ```text
//! e       = v - sum_r prod_m A_m[i_m, r]
//! A_m[i_m] += eta * (e * prod_{q != m} A_q[i_q]  -  mu * A_m[i_m])
//! ```
//!
//! Parallel SGD steps from different tasks may touch the same factor
//! rows, so each step locks the rows it updates through a hashed
//! [`LockPool`] — acquired in sorted slot order ([`LockPool::lock_many`])
//! to stay deadlock-free. This makes the solver a second consumer of the
//! paper's mutex-pool machinery: the Figure-4 lock-strategy comparison
//! applies verbatim (and is exposed through [`SgdOptions::locks`]).

use crate::completion::{rmse_observed, CompletionOutput};
use crate::kruskal::KruskalModel;
use splatt_dense::Matrix;
use splatt_locks::{LockPool, LockStrategy, DEFAULT_POOL_SIZE};
use splatt_par::{partition, TaskTeam, TeamConfig};
use splatt_tensor::SparseTensor;

/// Configuration for [`tensor_complete_sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdOptions {
    /// Factorization rank.
    pub rank: usize,
    /// Epochs (full passes over the observations).
    pub max_epochs: usize,
    /// Stop when train RMSE improves by less than this between epochs.
    pub tolerance: f64,
    /// Initial learning rate `eta`.
    pub step: f64,
    /// Multiplicative learning-rate decay per epoch
    /// (`eta_t = step / (1 + decay * t)`).
    pub decay: f64,
    /// Ridge regularization `mu`.
    pub regularization: f64,
    /// Tasks taking SGD steps concurrently.
    pub ntasks: usize,
    /// Lock strategy for the row-guarding mutex pool.
    pub locks: LockStrategy,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for SgdOptions {
    fn default() -> Self {
        SgdOptions {
            rank: 10,
            max_epochs: 100,
            tolerance: 1e-5,
            step: 0.1,
            decay: 0.05,
            regularization: 1e-3,
            ntasks: 1,
            locks: LockStrategy::Spin,
            seed: 0x56D,
        }
    }
}

/// Deterministic pseudo-shuffle: visit observations in the order given by
/// a full-cycle affine walk (`x -> (a x + b) mod n` with `a` coprime to
/// `n`). Avoids materializing and reshuffling a permutation each epoch.
fn stride_for(n: usize, epoch: usize, seed: u64) -> (usize, usize) {
    if n <= 1 {
        return (1, 0);
    }
    // pick an odd stride from the seed; force coprimality by search
    let mut a = ((seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9)) % n as u64) as usize | 1;
    while gcd(a, n) != 1 {
        a = (a + 2) % n;
        if a < 2 {
            a = 1;
            break;
        }
    }
    let b = (seed.wrapping_mul(31).wrapping_add(epoch as u64 * 17) % n as u64) as usize;
    (a.max(1), b)
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Shared mutable view of the factor matrices for locked SGD updates.
struct FactorsShared {
    ptrs: Vec<*mut f64>,
    rank: usize,
}
// SAFETY: rows are only mutated under the lock-pool guards covering their
// (mode, row) ids; see `sgd_step`.
unsafe impl Send for FactorsShared {}
unsafe impl Sync for FactorsShared {}

impl FactorsShared {
    /// # Safety
    /// Caller must hold the lock guarding `(mode, row)`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, mode: usize, row: usize) -> &mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.ptrs[mode].add(row * self.rank), self.rank) }
    }
}

/// Factorize the observed entries of `tensor` by parallel, lock-guarded
/// SGD. Returns the same output shape as the ALS completion solver.
///
/// # Panics
/// Panics if `rank`, `max_epochs`, or `ntasks` is zero.
pub fn tensor_complete_sgd(tensor: &SparseTensor, opts: &SgdOptions) -> CompletionOutput {
    assert!(opts.rank > 0, "rank must be positive");
    assert!(opts.max_epochs > 0, "max_epochs must be positive");
    let team = TaskTeam::with_config(opts.ntasks, TeamConfig::short_spin());
    let order = tensor.order();
    let rank = opts.rank;
    let nnz = tensor.nnz();

    let mut factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            let mut f = Matrix::random(d, rank, opts.seed.wrapping_add(m as u64));
            f.scale(1.0 / (rank as f64).sqrt());
            f
        })
        .collect();

    // (mode, row) -> global lock id
    let mode_offsets: Vec<usize> = {
        let mut off = vec![0usize; order];
        for m in 1..order {
            off[m] = off[m - 1] + tensor.dims()[m - 1];
        }
        off
    };
    let pool = LockPool::new(opts.locks, DEFAULT_POOL_SIZE);

    let mut rmse_trace = Vec::with_capacity(opts.max_epochs);
    let mut prev_rmse = f64::INFINITY;
    let mut iterations = 0;

    for epoch in 0..opts.max_epochs {
        iterations += 1;
        let eta = opts.step / (1.0 + opts.decay * epoch as f64);
        if nnz > 0 {
            let shared = FactorsShared {
                ptrs: factors
                    .iter_mut()
                    .map(|f| f.as_mut_slice().as_mut_ptr())
                    .collect(),
                rank,
            };
            let shared = &shared;
            let (stride, offset) = stride_for(nnz, epoch, opts.seed);
            let pool = &pool;
            let mode_offsets = &mode_offsets;
            team.coforall(|tid| {
                let mut lock_ids = vec![0usize; order];
                let mut rows = vec![0usize; order];
                let mut krp = vec![0.0; rank];
                let mut grads = vec![0.0; order * rank];
                for step_idx in partition::block(nnz, team.ntasks(), tid) {
                    let x = (step_idx * stride + offset) % nnz;
                    for (m, (row, lock_id)) in rows.iter_mut().zip(&mut lock_ids).enumerate() {
                        *row = tensor.ind(m)[x] as usize;
                        *lock_id = mode_offsets[m] + *row;
                    }
                    let _guards = pool.lock_many(&lock_ids);
                    // SAFETY: all rows below are covered by `_guards`.
                    unsafe {
                        // prediction and per-mode leave-one-out products
                        krp.fill(1.0);
                        for (m, &row_id) in rows.iter().enumerate() {
                            let row = shared.row_mut(m, row_id);
                            for (k, &v) in krp.iter_mut().zip(row.iter()) {
                                *k *= v;
                            }
                        }
                        let pred: f64 = krp.iter().sum();
                        let e = tensor.vals()[x] - pred;
                        // gradients first (they read every row), then apply
                        for m in 0..order {
                            let row = shared.row_mut(m, rows[m]);
                            let g = &mut grads[m * rank..(m + 1) * rank];
                            for ((gr, &k), &a) in g.iter_mut().zip(krp.iter()).zip(row.iter()) {
                                // leave-one-out product: krp_r / a_r, with
                                // a guard for zero entries
                                let loo = if a != 0.0 { k / a } else { 0.0 };
                                *gr = e * loo - opts.regularization * a;
                            }
                        }
                        for m in 0..order {
                            let row = shared.row_mut(m, rows[m]);
                            let g = &grads[m * rank..(m + 1) * rank];
                            for (a, &gr) in row.iter_mut().zip(g) {
                                *a += eta * gr;
                            }
                        }
                    }
                }
            });
        }

        let model = KruskalModel {
            lambda: vec![1.0; rank],
            factors: factors.clone(),
        };
        let rmse = rmse_observed(&model, tensor);
        rmse_trace.push(rmse);
        if opts.tolerance > 0.0 && (prev_rmse - rmse).abs() < opts.tolerance {
            break;
        }
        prev_rmse = rmse;
    }

    let rmse = rmse_trace.last().copied().unwrap_or(0.0);
    CompletionOutput {
        model: KruskalModel {
            lambda: vec![1.0; rank],
            factors,
        },
        rmse_trace,
        rmse,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    #[test]
    fn sgd_fits_planted_observations() {
        let (full, _) = synth::planted_dense(&[10, 9, 8], 2, 0.0, 21);
        let opts = SgdOptions {
            rank: 2,
            max_epochs: 300,
            tolerance: 0.0,
            step: 0.15,
            decay: 0.01,
            regularization: 1e-5,
            ntasks: 1,
            ..Default::default()
        };
        let out = tensor_complete_sgd(&full, &opts);
        assert!(out.rmse < 0.08, "train rmse {}", out.rmse);
    }

    #[test]
    fn sgd_parallel_matches_serial_quality() {
        let (full, _) = synth::planted_dense(&[12, 10, 8], 2, 0.0, 33);
        let run = |ntasks| {
            tensor_complete_sgd(
                &full,
                &SgdOptions {
                    rank: 2,
                    max_epochs: 200,
                    tolerance: 0.0,
                    step: 0.15,
                    decay: 0.01,
                    regularization: 1e-5,
                    ntasks,
                    ..Default::default()
                },
            )
            .rmse
        };
        let serial = run(1);
        let parallel = run(4);
        // different step interleavings, same optimization: quality close
        assert!(
            parallel < serial * 3.0 + 0.05,
            "serial {serial}, parallel {parallel}"
        );
    }

    #[test]
    fn sgd_rmse_trend_is_downward() {
        let (full, _) = synth::planted_dense(&[8, 8, 8], 2, 0.05, 3);
        let out = tensor_complete_sgd(
            &full,
            &SgdOptions {
                rank: 2,
                max_epochs: 50,
                tolerance: 0.0,
                ntasks: 2,
                ..Default::default()
            },
        );
        let first = out.rmse_trace[0];
        let last = *out.rmse_trace.last().unwrap();
        assert!(last < first, "no progress: {first} -> {last}");
    }

    #[test]
    fn sgd_works_with_all_lock_strategies() {
        let (full, _) = synth::planted_dense(&[6, 6, 6], 2, 0.0, 5);
        for locks in LockStrategy::ALL {
            let out = tensor_complete_sgd(
                &full,
                &SgdOptions {
                    rank: 2,
                    max_epochs: 20,
                    tolerance: 0.0,
                    ntasks: 3,
                    locks,
                    ..Default::default()
                },
            );
            assert!(out.rmse.is_finite(), "{locks:?}");
        }
    }

    #[test]
    fn sgd_empty_tensor() {
        let t = SparseTensor::new(vec![4, 4, 4]);
        let out = tensor_complete_sgd(
            &t,
            &SgdOptions {
                max_epochs: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.rmse, 0.0);
    }

    #[test]
    fn stride_cycles_cover_everything() {
        for n in [1usize, 2, 7, 100, 101] {
            for epoch in 0..5 {
                let (a, b) = stride_for(n, epoch, 42);
                let mut seen = vec![false; n];
                for i in 0..n {
                    seen[(i * a + b) % n] = true;
                }
                assert!(seen.iter().all(|&s| s), "n={n} epoch={epoch} a={a}");
            }
        }
    }
}
