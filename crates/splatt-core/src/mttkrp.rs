//! Parallel MTTKRP kernels over CSF.
//!
//! The matricized-tensor-times-Khatri-Rao-product is the critical routine
//! of CP-ALS (Algorithm 1 lines 5/8/11) and the kernel the paper spends
//! Section V-D optimizing. SPLATT provides three kernels depending on
//! where the output mode sits in the CSF tree:
//!
//! * **root** — output rows are owned exclusively by the task that owns
//!   the slice: no synchronization.
//! * **internal / leaf** — different slices scatter into the same output
//!   rows; SPLATT either *privatizes* (per-task output replicas + a
//!   reduction) when the output mode is small relative to the nonzero
//!   count, or protects rows with a hashed [`LockPool`]. The decision
//!   `dim[mode] * ntasks ≤ threshold * nnz` is exactly why the paper's
//!   YELP runs hit the lock path beyond 2 threads while NELL-2 never does
//!   (Section V-D.2).
//!
//! Every kernel is generic over [`MatrixAccess`] — the paper's Figure 2/3
//! ablation of how factor-matrix rows are read:
//!
//! * `RowCopy` — every row access materializes an owned copy, reproducing
//!   the overhead class of Chapel array slicing (descriptor + domain setup
//!   per slice) that made the initial port 18x slower.
//! * `Index2D` — direct 2D indexing, the paper's first fix (`i * cols + j`
//!   arithmetic per element).
//! * `PointerChecked` — a row slice taken once per access, elements read
//!   through bounds-checked indexing; the paper's final `c_ptrTo` style in
//!   its safe-Rust equivalent (the "Chapel-optimize" configuration).
//! * `PointerZip` — row slice with fused iterator traversal, letting LLVM
//!   drop all bounds checks; the C-reference configuration.

use crate::csf::{Csf, CsfSet, KernelKind};
use splatt_dense::Matrix;
use splatt_locks::{LockPool, LockStrategy, DEFAULT_POOL_SIZE};
use splatt_par::{partition, TaskTeam, ThreadScratch};

/// SPLATT's default privatization threshold (`DEFAULT_PRIV_THRESH`).
pub const DEFAULT_PRIV_THRESHOLD: f64 = 0.02;

/// Factor-matrix row access strategy (Figures 2/3 of the paper, plus the
/// C-reference variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixAccess {
    /// Owned copy per row access — Chapel array slicing ("Initial").
    RowCopy,
    /// Element-wise 2D indexing ("2D Index").
    Index2D,
    /// Row slice + bounds-checked element indexing ("Pointer", the
    /// optimized Chapel port).
    PointerChecked,
    /// Row slice + fused iterator traversal (the C reference).
    #[default]
    PointerZip,
}

impl MatrixAccess {
    /// Legend label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            MatrixAccess::RowCopy => "Initial",
            MatrixAccess::Index2D => "2D Index",
            MatrixAccess::PointerChecked => "Pointer",
            MatrixAccess::PointerZip => "C-ref",
        }
    }
}

/// Tuning knobs for the MTTKRP kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttkrpConfig {
    /// How factor rows are read.
    pub access: MatrixAccess,
    /// Lock implementation for the mutex pool.
    pub locks: LockStrategy,
    /// Locks in the pool (rounded up to a power of two).
    pub pool_size: usize,
    /// Privatize when `dim[mode] * ntasks <= priv_threshold * nnz`.
    pub priv_threshold: f64,
    /// Dispatch to fixed-width inner kernels when the rank is one of
    /// [`SPECIALIZED_RANKS`]. The specialized paths perform the exact
    /// same element-wise operations in the same order as the generic
    /// loop, so results are bit-identical; the compile-time trip count
    /// is what lets LLVM fully unroll and vectorize them.
    pub specialize: bool,
}

impl Default for MttkrpConfig {
    fn default() -> Self {
        MttkrpConfig {
            access: MatrixAccess::default(),
            locks: LockStrategy::default(),
            pool_size: DEFAULT_POOL_SIZE,
            priv_threshold: DEFAULT_PRIV_THRESHOLD,
            specialize: true,
        }
    }
}

/// Ranks with dedicated fixed-width kernel instantiations. Any other rank
/// (or `specialize: false`) takes the generic dynamic-width path.
///
/// Exception: the **leaf** kernel at R = 32 is retired — its fixed
/// `[f64; 32]` accumulator spills past the register file and benched
/// consistently below 1.0x (0.804x CSF / 0.887x ALTO), so leaf kernels
/// at rank 32 always run the generic path in both the CSF and ALTO
/// drivers, and [`crate::dispatch::DispatchTable::decide`] never offers
/// that cell as a specialization candidate.
pub const SPECIALIZED_RANKS: [usize; 3] = [8, 16, 32];

/// Re-slice a rank-length slice as a fixed-width array reference. Only
/// reachable from kernels dispatched with `R == rank`, so the length
/// always matches.
#[inline(always)]
pub(crate) fn fixed<const R: usize>(s: &[f64]) -> &[f64; R] {
    s.try_into().expect("specialized kernel width mismatch")
}

#[inline(always)]
pub(crate) fn fixed_mut<const R: usize>(s: &mut [f64]) -> &mut [f64; R] {
    s.try_into().expect("specialized kernel width mismatch")
}

/// SPLATT's privatization heuristic: replicate the output per task when
/// the replicas stay small relative to the work.
pub fn use_privatization(dim: usize, ntasks: usize, nnz: usize, threshold: f64) -> bool {
    (dim as f64) * (ntasks as f64) <= threshold * (nnz as f64)
}

/// Reusable buffers and synchronization state for repeated MTTKRP calls.
pub struct MttkrpWorkspace {
    pub(crate) pool: LockPool,
    pub(crate) replicas: ThreadScratch,
    /// Per-task walk buffers (`ones` + up/down prefix products), grow-only
    /// so steady-state kernel calls never allocate.
    pub(crate) kernel: ThreadScratch,
    pub(crate) ntasks: usize,
    pub(crate) probe: Option<std::sync::Arc<splatt_probe::MttkrpProbe>>,
    pub(crate) guard: Option<splatt_guard::RunGuard>,
}

impl MttkrpWorkspace {
    /// Create a workspace for `ntasks`-way kernels under `cfg`.
    pub fn new(cfg: &MttkrpConfig, ntasks: usize) -> Self {
        MttkrpWorkspace {
            pool: LockPool::new(cfg.locks, cfg.pool_size),
            replicas: ThreadScratch::new(ntasks, 0),
            kernel: ThreadScratch::new(ntasks, 0),
            ntasks,
            probe: None,
            guard: None,
        }
    }

    /// Number of tasks this workspace serves.
    pub fn ntasks(&self) -> usize {
        self.ntasks
    }

    /// Attach observability probes: per-thread kernel times and lock-pool
    /// contention counters are recorded into `probe` from every subsequent
    /// [`mttkrp`] call through this workspace. Pass `None` to detach and
    /// return the kernels to their unobserved (branch-only) fast path.
    pub fn set_probe(&mut self, probe: Option<std::sync::Arc<splatt_probe::MttkrpProbe>>) {
        self.pool
            .set_counters(probe.as_ref().map(|p| std::sync::Arc::clone(&p.locks)));
        self.probe = probe;
    }

    /// The attached probe, if any.
    pub fn probe(&self) -> Option<&std::sync::Arc<splatt_probe::MttkrpProbe>> {
        self.probe.as_ref()
    }

    /// Attach a run guard: every subsequent [`mttkrp`] through this
    /// workspace heartbeats its task lanes and polls for cancellation
    /// once per [`GUARD_CHUNK`] root slices, so a tripped run stops
    /// scattering within a bounded amount of work. Pass `None` to return
    /// the kernels to the unguarded fast path.
    pub fn set_guard(&mut self, guard: Option<splatt_guard::RunGuard>) {
        self.guard = guard;
    }

    /// The attached guard, if any.
    pub fn guard(&self) -> Option<&splatt_guard::RunGuard> {
        self.guard.as_ref()
    }
}

/// Root slices processed between guard polls in a guarded kernel. Small
/// enough that cancellation latency stays in the microsecond range,
/// large enough that a clean run's overhead is one predictable branch
/// plus a relaxed load every `GUARD_CHUNK` slices.
pub const GUARD_CHUNK: usize = 64;

/// Shared writable view of the output matrix for scatter kernels.
///
/// Safety protocol: concurrent `row_mut` calls on the *same* row must be
/// externally synchronized (lock pool), or rows must be partitioned
/// disjointly across tasks (root kernel).
pub(crate) struct SharedOut {
    ptr: *mut f64,
    cols: usize,
    #[cfg(debug_assertions)]
    rows: usize,
}

unsafe impl Send for SharedOut {}
unsafe impl Sync for SharedOut {}

impl SharedOut {
    pub(crate) fn new(m: &mut Matrix) -> Self {
        SharedOut {
            ptr: m.as_mut_slice().as_mut_ptr(),
            cols: m.cols(),
            #[cfg(debug_assertions)]
            rows: m.rows(),
        }
    }

    /// # Safety
    /// Callers must guarantee no concurrent access to row `i` (see the
    /// type-level protocol).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub(crate) unsafe fn row_mut(&self, i: usize) -> &mut [f64] {
        #[cfg(debug_assertions)]
        debug_assert!(i < self.rows);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.cols), self.cols) }
    }
}

/// Where a task's scatter contributions land.
pub(crate) enum OutTarget<'t> {
    /// Directly into the shared output; `pool` is `None` for the root
    /// kernel (rows disjoint by partition), `Some` otherwise.
    Shared {
        out: &'t SharedOut,
        pool: Option<&'t LockPool>,
    },
    /// Into this task's private replica (flat `dim x rank`).
    Replica { buf: &'t mut [f64], rank: usize },
}

impl OutTarget<'_> {
    /// `row[r] += down[r] * up[r]` on output row `idx`. `R` is the
    /// compile-time rank (`0` = dynamic); both paths apply the identical
    /// element-wise update order, so they are bit-identical.
    #[inline]
    pub(crate) fn add_product<const R: usize>(&mut self, idx: usize, down: &[f64], up: &[f64]) {
        match self {
            OutTarget::Shared { out, pool } => {
                let _guard = pool.map(|p| p.lock(idx));
                // SAFETY: either the lock pool serializes access to this
                // row's hash class, or (root kernel) the row is owned by
                // this task alone.
                let row = unsafe { out.row_mut(idx) };
                if R > 0 {
                    let (row, down, up) = (fixed_mut::<R>(row), fixed::<R>(down), fixed::<R>(up));
                    for r in 0..R {
                        row[r] += down[r] * up[r];
                    }
                } else {
                    for ((o, &d), &u) in row.iter_mut().zip(down).zip(up) {
                        *o += d * u;
                    }
                }
            }
            OutTarget::Replica { buf, rank } => {
                let row = &mut buf[idx * *rank..(idx + 1) * *rank];
                if R > 0 {
                    let (row, down, up) = (fixed_mut::<R>(row), fixed::<R>(down), fixed::<R>(up));
                    for r in 0..R {
                        row[r] += down[r] * up[r];
                    }
                } else {
                    for ((o, &d), &u) in row.iter_mut().zip(down).zip(up) {
                        *o += d * u;
                    }
                }
            }
        }
    }

    /// `row[r] += v * src[r]` on output row `idx` (leaf scatter).
    #[inline]
    pub(crate) fn add_scaled<const R: usize>(&mut self, idx: usize, v: f64, src: &[f64]) {
        match self {
            OutTarget::Shared { out, pool } => {
                let _guard = pool.map(|p| p.lock(idx));
                // SAFETY: as in `add_product`.
                let row = unsafe { out.row_mut(idx) };
                if R > 0 {
                    let (row, src) = (fixed_mut::<R>(row), fixed::<R>(src));
                    for r in 0..R {
                        row[r] += v * src[r];
                    }
                } else {
                    for (o, &s) in row.iter_mut().zip(src) {
                        *o += v * s;
                    }
                }
            }
            OutTarget::Replica { buf, rank } => {
                let row = &mut buf[idx * *rank..(idx + 1) * *rank];
                if R > 0 {
                    let (row, src) = (fixed_mut::<R>(row), fixed::<R>(src));
                    for r in 0..R {
                        row[r] += v * src[r];
                    }
                } else {
                    for (o, &s) in row.iter_mut().zip(src) {
                        *o += v * s;
                    }
                }
            }
        }
    }
}

/// Monomorphized factor-row access operations.
///
/// Each method is additionally const-generic over the compile-time rank
/// `R` (`0` = dynamic width). When `R > 0` the row and accumulator are
/// re-sliced to `&[f64; R]`, giving LLVM an exact trip count to unroll
/// and vectorize against; the arithmetic — element order included — is
/// identical to the dynamic path, so both produce bit-identical results.
pub(crate) trait Access {
    /// `accum[r] += scale * f[idx][r]` — the leaf gather.
    fn axpy_row<const R: usize>(f: &Matrix, idx: usize, scale: f64, accum: &mut [f64]);
    /// `dst[r] = a[r] * f[idx][r]` — extend the downward prefix product.
    fn mul_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], dst: &mut [f64]);
    /// `accum[r] += a[r] * f[idx][r]` — combine a child's upward product.
    fn fma_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], accum: &mut [f64]);
}

/// Chapel-slicing analogue: a fresh owned copy per row access.
///
/// A Chapel slice expression (`factor[i, ..]`) builds a new domain object
/// and an array-view descriptor on the heap before any element is touched
/// (the overhead documented in chapel-lang/chapel#8203 and measured in the
/// paper's Figures 2/3). We model that per-access constant cost with a
/// small descriptor allocation plus the row copy itself.
pub(crate) struct RowCopyAccess;

#[inline]
fn slice_descriptor(idx: usize, cols: usize) -> Vec<usize> {
    // black_box prevents the optimizer from recognizing the descriptor as
    // dead and deleting the modeled allocation.
    splatt_probe::alloc::record_descriptor(2 * std::mem::size_of::<usize>());
    std::hint::black_box(vec![idx * cols, idx * cols + cols])
}

/// `f.row_copy(idx)` with allocation accounting — the measurable half of
/// the paper's 18x slice-overhead story.
#[inline]
fn counted_row_copy(f: &Matrix, idx: usize) -> Vec<f64> {
    splatt_probe::alloc::record_row_copy(f.cols() * std::mem::size_of::<f64>());
    f.row_copy(idx)
}

impl Access for RowCopyAccess {
    // The specialized widths still pay the full descriptor + copy cost:
    // rank specialization must not quietly erase the modeled Chapel
    // slicing overhead this variant exists to measure.
    #[inline]
    fn axpy_row<const R: usize>(f: &Matrix, idx: usize, scale: f64, accum: &mut [f64]) {
        let _desc = slice_descriptor(idx, f.cols());
        let row = counted_row_copy(f, idx); // allocation: the modeled slicing cost
        if R > 0 {
            let (row, accum) = (fixed::<R>(&row), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += scale * row[r];
            }
        } else {
            for (a, &v) in accum.iter_mut().zip(&row) {
                *a += scale * v;
            }
        }
    }
    #[inline]
    fn mul_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], dst: &mut [f64]) {
        let _desc = slice_descriptor(idx, f.cols());
        let row = counted_row_copy(f, idx);
        if R > 0 {
            let (row, a, dst) = (fixed::<R>(&row), fixed::<R>(a), fixed_mut::<R>(dst));
            for r in 0..R {
                dst[r] = a[r] * row[r];
            }
        } else {
            for ((d, &x), &v) in dst.iter_mut().zip(a).zip(&row) {
                *d = x * v;
            }
        }
    }
    #[inline]
    fn fma_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], accum: &mut [f64]) {
        let _desc = slice_descriptor(idx, f.cols());
        let row = counted_row_copy(f, idx);
        if R > 0 {
            let (row, a, accum) = (fixed::<R>(&row), fixed::<R>(a), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += a[r] * row[r];
            }
        } else {
            for ((acc, &x), &v) in accum.iter_mut().zip(a).zip(&row) {
                *acc += x * v;
            }
        }
    }
}

/// Direct 2D indexing: index arithmetic + bounds check per element.
pub(crate) struct Index2DAccess;
impl Access for Index2DAccess {
    // Specialized widths keep the per-element 2D index arithmetic (and
    // its bounds check) — only the trip count becomes compile-time.
    #[inline]
    fn axpy_row<const R: usize>(f: &Matrix, idx: usize, scale: f64, accum: &mut [f64]) {
        if R > 0 {
            let accum = fixed_mut::<R>(accum);
            for r in 0..R {
                accum[r] += scale * f[(idx, r)];
            }
        } else {
            for (r, a) in accum.iter_mut().enumerate() {
                *a += scale * f[(idx, r)];
            }
        }
    }
    #[inline]
    fn mul_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], dst: &mut [f64]) {
        if R > 0 {
            let (a, dst) = (fixed::<R>(a), fixed_mut::<R>(dst));
            for r in 0..R {
                dst[r] = a[r] * f[(idx, r)];
            }
        } else {
            for (r, (d, &x)) in dst.iter_mut().zip(a).enumerate() {
                *d = x * f[(idx, r)];
            }
        }
    }
    #[inline]
    fn fma_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], accum: &mut [f64]) {
        if R > 0 {
            let (a, accum) = (fixed::<R>(a), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += a[r] * f[(idx, r)];
            }
        } else {
            for (r, (acc, &x)) in accum.iter_mut().zip(a).enumerate() {
                *acc += x * f[(idx, r)];
            }
        }
    }
}

/// Row slice once, bounds-checked element reads (optimized Chapel port).
pub(crate) struct PointerCheckedAccess;
impl Access for PointerCheckedAccess {
    #[inline]
    fn axpy_row<const R: usize>(f: &Matrix, idx: usize, scale: f64, accum: &mut [f64]) {
        let row = f.row(idx);
        if R > 0 {
            let (row, accum) = (fixed::<R>(row), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += scale * row[r];
            }
        } else {
            for (r, a) in accum.iter_mut().enumerate() {
                *a += scale * row[r];
            }
        }
    }
    #[inline]
    fn mul_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], dst: &mut [f64]) {
        let row = f.row(idx);
        if R > 0 {
            let (row, a, dst) = (fixed::<R>(row), fixed::<R>(a), fixed_mut::<R>(dst));
            for r in 0..R {
                dst[r] = a[r] * row[r];
            }
        } else {
            for (r, (d, &x)) in dst.iter_mut().zip(a).enumerate() {
                *d = x * row[r];
            }
        }
    }
    #[inline]
    fn fma_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], accum: &mut [f64]) {
        let row = f.row(idx);
        if R > 0 {
            let (row, a, accum) = (fixed::<R>(row), fixed::<R>(a), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += a[r] * row[r];
            }
        } else {
            for (r, (acc, &x)) in accum.iter_mut().zip(a).enumerate() {
                *acc += x * row[r];
            }
        }
    }
}

/// Row slice with fused iteration — check-free inner loops (C reference).
pub(crate) struct PointerZipAccess;
impl Access for PointerZipAccess {
    #[inline]
    fn axpy_row<const R: usize>(f: &Matrix, idx: usize, scale: f64, accum: &mut [f64]) {
        if R > 0 {
            let (row, accum) = (fixed::<R>(f.row(idx)), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += scale * row[r];
            }
        } else {
            for (a, &v) in accum.iter_mut().zip(f.row(idx)) {
                *a += scale * v;
            }
        }
    }
    #[inline]
    fn mul_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], dst: &mut [f64]) {
        if R > 0 {
            let (row, a, dst) = (fixed::<R>(f.row(idx)), fixed::<R>(a), fixed_mut::<R>(dst));
            for r in 0..R {
                dst[r] = a[r] * row[r];
            }
        } else {
            for ((d, &x), &v) in dst.iter_mut().zip(a).zip(f.row(idx)) {
                *d = x * v;
            }
        }
    }
    #[inline]
    fn fma_row<const R: usize>(f: &Matrix, idx: usize, a: &[f64], accum: &mut [f64]) {
        if R > 0 {
            let (row, a, accum) = (fixed::<R>(f.row(idx)), fixed::<R>(a), fixed_mut::<R>(accum));
            for r in 0..R {
                accum[r] += a[r] * row[r];
            }
        } else {
            for ((acc, &x), &v) in accum.iter_mut().zip(a).zip(f.row(idx)) {
                *acc += x * v;
            }
        }
    }
}

/// Compute the MTTKRP for `mode` into `out` (`dims[mode] x rank`).
///
/// Selects the CSF representation and kernel via [`CsfSet::for_mode`],
/// decides privatization vs. locking with SPLATT's heuristic, and runs
/// slice-parallel on `team` with nonzero-weighted task partitioning.
///
/// ```
/// use splatt_core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
/// use splatt_core::{CsfAlloc, CsfSet};
/// use splatt_dense::Matrix;
/// use splatt_par::TaskTeam;
/// use splatt_tensor::{synth, SortVariant};
///
/// let tensor = synth::random_uniform(&[20, 15, 25], 500, 7);
/// let team = TaskTeam::new(2);
/// let set = CsfSet::build(&tensor, CsfAlloc::Two, &team, SortVariant::AllOpts);
/// let factors: Vec<Matrix> = tensor.dims().iter().enumerate()
///     .map(|(m, &d)| Matrix::random(d, 4, m as u64))
///     .collect();
/// let cfg = MttkrpConfig::default();
/// let mut ws = MttkrpWorkspace::new(&cfg, 2);
/// let mut out = Matrix::zeros(20, 4);
/// mttkrp(&set, &factors, 0, &mut out, &mut ws, &team, &cfg);
/// // equals the naive coordinate-form reference:
/// let expect = splatt_core::reference::mttkrp_coo(&tensor, &factors, 0);
/// assert!(out.approx_eq(&expect, 1e-9));
/// ```
///
/// # Panics
/// Panics if shapes disagree (`out` must be `dims[mode] x rank`, factors
/// must be `dims[m] x rank`).
pub fn mttkrp(
    set: &CsfSet,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    ws: &mut MttkrpWorkspace,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) {
    let (csf, kind) = set.for_mode(mode);
    assert_eq!(
        out.rows(),
        csf.dims()[mode],
        "output rows must match mode dim"
    );
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.rows(), csf.dims()[m], "factor {m} rows mismatch");
        assert_eq!(f.cols(), out.cols(), "factor {m} rank mismatch");
    }
    // Two-level dispatch: access strategy (outer) x compile-time rank
    // (inner). `R = 0` is the dynamic-width fallback. The leaf kernel at
    // R = 32 is retired: its fixed-width accumulator spills past the
    // register file and measured consistently below 1.0x, so leaf-32
    // always takes the generic path (see `SPECIALIZED_RANKS`).
    let leaf32_retired = matches!(kind, KernelKind::Leaf);
    macro_rules! dispatch {
        ($A:ty) => {
            match out.cols() {
                8 if cfg.specialize => run::<$A, 8>(csf, kind, factors, mode, out, ws, team, cfg),
                16 if cfg.specialize => run::<$A, 16>(csf, kind, factors, mode, out, ws, team, cfg),
                32 if cfg.specialize && !leaf32_retired => {
                    run::<$A, 32>(csf, kind, factors, mode, out, ws, team, cfg)
                }
                _ => run::<$A, 0>(csf, kind, factors, mode, out, ws, team, cfg),
            }
        };
    }
    match cfg.access {
        MatrixAccess::RowCopy => dispatch!(RowCopyAccess),
        MatrixAccess::Index2D => dispatch!(Index2DAccess),
        MatrixAccess::PointerChecked => dispatch!(PointerCheckedAccess),
        MatrixAccess::PointerZip => dispatch!(PointerZipAccess),
    }
}

/// Compute the MTTKRP for a *tiled* mode: each task runs the lock-free
/// root kernel over its tile(s), whose output rows are disjoint by
/// construction — SPLATT's mode-tiling execution (no locks, no replicas,
/// no reduction).
///
/// # Panics
/// Panics if shapes disagree.
pub fn mttkrp_tiled(
    tiled: &crate::tiling::TiledCsf,
    factors: &[Matrix],
    out: &mut Matrix,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) {
    mttkrp_tiled_guarded(tiled, factors, out, team, cfg, None)
}

/// [`mttkrp_tiled`] under run governance: each task heartbeats its lane
/// and polls `guard` between tiles (and every [`GUARD_CHUNK`] root slices
/// within a tile), abandoning remaining work once the run is cancelled.
/// The output is unspecified after a cancelled kernel; the driver's next
/// guard check aborts the run before the partial output is consumed.
///
/// # Panics
/// Panics if shapes disagree.
pub fn mttkrp_tiled_guarded(
    tiled: &crate::tiling::TiledCsf,
    factors: &[Matrix],
    out: &mut Matrix,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
    guard: Option<&splatt_guard::RunGuard>,
) {
    let mode = tiled.mode();
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.cols(), out.cols(), "factor {m} rank mismatch");
    }
    assert!(
        tiled.ntiles() == 0 || out.rows() == tiled.tile(0).dims()[mode],
        "output rows must match mode dim"
    );
    macro_rules! dispatch {
        ($A:ty) => {
            match out.cols() {
                8 if cfg.specialize => run_tiled::<$A, 8>(tiled, factors, out, team, guard),
                16 if cfg.specialize => run_tiled::<$A, 16>(tiled, factors, out, team, guard),
                32 if cfg.specialize => run_tiled::<$A, 32>(tiled, factors, out, team, guard),
                _ => run_tiled::<$A, 0>(tiled, factors, out, team, guard),
            }
        };
    }
    match cfg.access {
        MatrixAccess::RowCopy => dispatch!(RowCopyAccess),
        MatrixAccess::Index2D => dispatch!(Index2DAccess),
        MatrixAccess::PointerChecked => dispatch!(PointerCheckedAccess),
        MatrixAccess::PointerZip => dispatch!(PointerZipAccess),
    }
}

fn run_tiled<A: Access, const R: usize>(
    tiled: &crate::tiling::TiledCsf,
    factors: &[Matrix],
    out: &mut Matrix,
    team: &TaskTeam,
    guard: Option<&splatt_guard::RunGuard>,
) {
    out.fill(0.0);
    let rank = out.cols();
    if rank == 0 || tiled.nnz() == 0 {
        return;
    }
    let ntasks = team.ntasks();
    let order = tiled.tile(0).order();
    let shared = SharedOut::new(out);
    let shared = &shared;
    team.coforall(|tid| {
        let _lane = splatt_guard::LaneSpan::enter(guard, tid);
        // one walk arena per task, shared by every tile it owns
        let mut arena = vec![0.0; arena_len(order, rank)];
        for t in partition::block(tiled.ntiles(), ntasks, tid) {
            if guard.is_some_and(|g| g.poll(tid)) {
                break;
            }
            let csf = tiled.tile(t);
            if csf.nnz() == 0 {
                continue;
            }
            // SAFETY justification for `pool: None`: tile CSFs are rooted
            // at the output mode and tiles own disjoint output-row ranges,
            // so no two tasks ever write the same row.
            let mut target = OutTarget::Shared {
                out: shared,
                pool: None,
            };
            task_slices::<A, R>(
                csf,
                0,
                factors,
                rank,
                &mut target,
                &mut arena,
                0..csf.nfibers(0),
                guard.map(|g| (g, tid)),
            );
        }
    });
}

/// Per-task walk arena length: `ones` (one rank row) plus an up and a
/// down prefix-product buffer per tree level.
#[inline]
pub(crate) fn arena_len(order: usize, rank: usize) -> usize {
    (2 * order + 1) * rank
}

/// Does an MTTKRP on `mode` under this configuration take the lock-based
/// path (as opposed to root-kernel or privatized execution)? Exposed for
/// experiment reporting — this is the paper's "YELP requires locks beyond
/// two tasks" decision made visible.
pub fn uses_locks(set: &CsfSet, mode: usize, ntasks: usize, cfg: &MttkrpConfig) -> bool {
    let (csf, kind) = set.for_mode(mode);
    match kind {
        KernelKind::Root => false,
        _ => !use_privatization(csf.dims()[mode], ntasks, csf.nnz(), cfg.priv_threshold),
    }
}

#[allow(clippy::too_many_arguments)]
fn run<A: Access, const R: usize>(
    csf: &Csf,
    kind: KernelKind,
    factors: &[Matrix],
    mode: usize,
    out: &mut Matrix,
    ws: &mut MttkrpWorkspace,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) {
    out.fill(0.0);
    let rank = out.cols();
    if rank == 0 || csf.nnz() == 0 {
        return;
    }
    let order = csf.order();
    let od = match kind {
        KernelKind::Root => 0,
        KernelKind::Internal(d) => d,
        KernelKind::Leaf => order - 1,
    };
    debug_assert_eq!(csf.dim_perm()[od], mode);

    let ntasks = team.ntasks();
    let prefix = partition::prefix_sum(csf.slice_nnz());
    let bounds = partition::weighted(&prefix, ntasks);

    let needs_sync = od != 0;
    let privatize =
        needs_sync && use_privatization(csf.dims()[mode], ntasks, csf.nnz(), cfg.priv_threshold);

    // Grow-only scratch: steady-state calls find the buffers already
    // sized and record no allocations — only actual growth is counted.
    let grown = ws.kernel.ensure_len(arena_len(order, rank));
    if grown > 0 {
        splatt_probe::alloc::record_kernel_scratch(grown);
    }

    // Cheap Arc clone so the guard handle outlives the mutable borrows
    // of the workspace below.
    let guard = ws.guard.clone();
    let guard = guard.as_ref();

    if privatize {
        let grown = ws.replicas.ensure_len(out.rows() * rank);
        if grown > 0 {
            splatt_probe::alloc::record_replica_growth(grown);
        }
        ws.replicas.reset();
        splatt_probe::alloc::record_replica_reduction();
        let replicas = &ws.replicas;
        let kernel = &ws.kernel;
        let bounds = &bounds;
        let body = |tid: usize| {
            let _lane = splatt_guard::LaneSpan::enter(guard, tid);
            replicas.with_mut(tid, |buf| {
                kernel.with_mut(tid, |arena| {
                    let mut target = OutTarget::Replica { buf, rank };
                    task_slices::<A, R>(
                        csf,
                        od,
                        factors,
                        rank,
                        &mut target,
                        arena,
                        bounds[tid]..bounds[tid + 1],
                        guard.map(|g| (g, tid)),
                    );
                });
            });
        };
        match &ws.probe {
            None => team.coforall(body),
            Some(probe) => team.coforall_timed(&probe.tasks, |tid| {
                body(tid);
                (bounds[tid + 1] - bounds[tid]) as u64
            }),
        }
        // The replicas may be longer than this mode's output (grow-only
        // scratch); reduce only the live prefix.
        ws.replicas.reduce_sum_into(out.as_mut_slice());
    } else {
        let shared = SharedOut::new(out);
        let shared = &shared;
        let pool = needs_sync.then_some(&ws.pool);
        let kernel = &ws.kernel;
        let bounds = &bounds;
        let body = |tid: usize| {
            let _lane = splatt_guard::LaneSpan::enter(guard, tid);
            kernel.with_mut(tid, |arena| {
                let mut target = OutTarget::Shared { out: shared, pool };
                task_slices::<A, R>(
                    csf,
                    od,
                    factors,
                    rank,
                    &mut target,
                    arena,
                    bounds[tid]..bounds[tid + 1],
                    guard.map(|g| (g, tid)),
                );
            });
        };
        match &ws.probe {
            None => team.coforall(body),
            Some(probe) => team.coforall_timed(&probe.tasks, |tid| {
                body(tid);
                (bounds[tid + 1] - bounds[tid]) as u64
            }),
        }
    }
}

/// Process a contiguous range of root slices for one task. When `guard`
/// is present, the task heartbeats and polls for cancellation once per
/// [`GUARD_CHUNK`] slices on its lane and returns early if the run was
/// tripped (leaving the target partially written — the governed driver
/// discards it).
#[allow(clippy::too_many_arguments)]
fn task_slices<A: Access, const R: usize>(
    csf: &Csf,
    od: usize,
    factors: &[Matrix],
    rank: usize,
    target: &mut OutTarget<'_>,
    arena: &mut [f64],
    slices: std::ops::Range<usize>,
    guard: Option<(&splatt_guard::RunGuard, usize)>,
) {
    let order = csf.order();
    // the grow-only arena may be larger than this call needs; carve the
    // layout [ones | up prefix products | down prefix products] off the
    // front, one rank row per tree level for each direction
    let (ones, rest) = arena.split_at_mut(rank);
    ones.fill(1.0);
    let (up_bufs, down_bufs) = rest.split_at_mut(order * rank);
    for (n, s) in slices.enumerate() {
        if let Some((g, lane)) = guard {
            if n % GUARD_CHUNK == 0 && g.poll(lane) {
                return;
            }
        }
        descend::<A, R>(
            csf, 0, s, od, ones, factors, rank, target, up_bufs, down_bufs,
        );
    }
}

/// Walk from `fiber` at `level` toward the output depth `od`, carrying the
/// running product `down` of factor rows at levels `< level` (excluding
/// the output level). `up_bufs`/`down_bufs` are flat per-task arenas; each
/// recursion level peels one rank-length row off the front.
#[allow(clippy::too_many_arguments)]
fn descend<A: Access, const R: usize>(
    csf: &Csf,
    level: usize,
    fiber: usize,
    od: usize,
    down: &[f64],
    factors: &[Matrix],
    rank: usize,
    target: &mut OutTarget<'_>,
    up_bufs: &mut [f64],
    down_bufs: &mut [f64],
) {
    let order = csf.order();
    let perm = csf.dim_perm();
    if level == od {
        // up-product of the subtree below (excluding this level's factor)
        compute_up::<A, R>(csf, level, fiber, factors, rank, up_bufs);
        let fid = csf.fids(level)[fiber] as usize;
        target.add_product::<R>(fid, down, &up_bufs[..rank]);
        return;
    }
    debug_assert!(level < od);
    let fid = csf.fids(level)[fiber] as usize;
    let (cur, rest) = down_bufs.split_at_mut(rank);
    A::mul_row::<R>(&factors[perm[level]], fid, down, cur);
    if level == order - 2 {
        // children are the leaves and the output is the leaf mode:
        // scatter each nonzero into its leaf row (SPLATT's leaf kernel)
        debug_assert_eq!(od, order - 1);
        let leaf_fids = csf.fids(order - 1);
        let vals = csf.vals();
        for x in csf.children(level, fiber) {
            target.add_scaled::<R>(leaf_fids[x] as usize, vals[x], cur);
        }
    } else {
        for c in csf.children(level, fiber) {
            descend::<A, R>(
                csf,
                level + 1,
                c,
                od,
                cur,
                factors,
                rank,
                target,
                up_bufs,
                rest,
            );
        }
    }
}

/// Fill the first rank row of `bufs` with the upward product of `fiber`'s
/// subtree: the sum over nonzeros below of `val * prod(factor rows at
/// levels > level)`.
fn compute_up<A: Access, const R: usize>(
    csf: &Csf,
    level: usize,
    fiber: usize,
    factors: &[Matrix],
    rank: usize,
    bufs: &mut [f64],
) {
    let order = csf.order();
    let perm = csf.dim_perm();
    let (buf, rest) = bufs.split_at_mut(rank);
    buf.fill(0.0);
    if level == order - 2 {
        // hot loop: gather leaf nonzeros against the leaf factor
        let leaf = &factors[perm[order - 1]];
        let leaf_fids = csf.fids(order - 1);
        let vals = csf.vals();
        for x in csf.children(level, fiber) {
            A::axpy_row::<R>(leaf, leaf_fids[x] as usize, vals[x], buf);
        }
    } else {
        let child = &factors[perm[level + 1]];
        let child_fids = csf.fids(level + 1);
        for c in csf.children(level, fiber) {
            compute_up::<A, R>(csf, level + 1, c, factors, rank, rest);
            A::fma_row::<R>(child, child_fids[c] as usize, &rest[..rank], buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csf::CsfAlloc;
    use crate::reference::mttkrp_coo;
    use splatt_tensor::{synth, SortVariant, SparseTensor};

    const ALL_ACCESS: [MatrixAccess; 4] = [
        MatrixAccess::RowCopy,
        MatrixAccess::Index2D,
        MatrixAccess::PointerChecked,
        MatrixAccess::PointerZip,
    ];

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Matrix> {
        t.dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, seed + m as u64))
            .collect()
    }

    fn run_config(
        t: &SparseTensor,
        rank: usize,
        alloc: CsfAlloc,
        cfg: &MttkrpConfig,
        ntasks: usize,
    ) {
        let team = TaskTeam::new(ntasks);
        let set = CsfSet::build(t, alloc, &team, SortVariant::AllOpts);
        let factors = factors_for(t, rank, 7);
        let mut ws = MttkrpWorkspace::new(cfg, ntasks);
        for mode in 0..t.order() {
            let expect = mttkrp_coo(t, &factors, mode);
            let mut out = Matrix::zeros(t.dims()[mode], rank);
            mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, cfg);
            assert!(
                out.approx_eq(&expect, 1e-9),
                "mode {mode} mismatch (alloc {alloc:?}, cfg {cfg:?}, ntasks {ntasks}): max diff {}",
                out.max_abs_diff(&expect)
            );
        }
    }

    #[test]
    fn matches_reference_all_access_strategies() {
        let t = synth::power_law(&[30, 14, 40], 2_500, 1.8, 3);
        for access in ALL_ACCESS {
            let cfg = MttkrpConfig {
                access,
                ..Default::default()
            };
            run_config(&t, 5, CsfAlloc::Two, &cfg, 2);
        }
    }

    #[test]
    fn matches_reference_all_allocs() {
        let t = synth::power_law(&[25, 18, 33], 2_000, 2.0, 11);
        for alloc in [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All] {
            run_config(&t, 4, alloc, &MttkrpConfig::default(), 3);
        }
    }

    #[test]
    fn matches_reference_forced_locks() {
        // threshold 0 => never privatize => lock path for non-root modes
        let t = synth::power_law(&[20, 12, 28], 1_500, 1.5, 5);
        for locks in LockStrategy::ALL {
            let cfg = MttkrpConfig {
                locks,
                priv_threshold: 0.0,
                ..Default::default()
            };
            run_config(&t, 3, CsfAlloc::One, &cfg, 4);
        }
    }

    #[test]
    fn matches_reference_forced_privatization() {
        // huge threshold => always privatize non-root modes
        let t = synth::power_law(&[20, 12, 28], 1_500, 1.5, 6);
        let cfg = MttkrpConfig {
            priv_threshold: 1e9,
            ..Default::default()
        };
        run_config(&t, 3, CsfAlloc::One, &cfg, 4);
    }

    #[test]
    fn matches_reference_single_task() {
        let t = synth::random_uniform(&[10, 10, 10], 400, 9);
        run_config(&t, 6, CsfAlloc::Two, &MttkrpConfig::default(), 1);
    }

    #[test]
    fn matches_reference_four_modes() {
        let t = synth::random_uniform(&[8, 12, 6, 9], 1_200, 13);
        for alloc in [CsfAlloc::One, CsfAlloc::All] {
            run_config(&t, 4, alloc, &MttkrpConfig::default(), 2);
        }
    }

    #[test]
    fn handles_single_nonzero() {
        let t = SparseTensor::from_entries(vec![4, 5, 6], &[(vec![1, 2, 3], 2.0)]);
        run_config(&t, 3, CsfAlloc::Two, &MttkrpConfig::default(), 2);
    }

    #[test]
    fn handles_duplicate_coordinates() {
        let t = SparseTensor::from_entries(
            vec![3, 3, 3],
            &[
                (vec![1, 1, 1], 2.0),
                (vec![1, 1, 1], 3.0),
                (vec![0, 2, 1], 1.0),
            ],
        );
        run_config(&t, 4, CsfAlloc::Two, &MttkrpConfig::default(), 2);
    }

    #[test]
    fn duplicate_coordinates_flat_nested_and_coo_agree() {
        // Repeated coordinates keep one leaf per nonzero. The flat-slab
        // two-pass build must structurally match the old nested (push-
        // per-nonzero) construction AND numerically match the COO
        // reference through every kernel.
        let t = SparseTensor::from_entries(
            vec![4, 3, 5],
            &[
                (vec![2, 1, 4], 1.5),
                (vec![2, 1, 4], -0.5),
                (vec![2, 1, 4], 2.0),
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 0], 1.0),
                (vec![3, 2, 1], 4.0),
            ],
        );
        let team = TaskTeam::new(2);
        for root in 0..t.order() {
            let mut perm: Vec<usize> = (0..t.order()).collect();
            perm.swap(0, root);
            let flat = Csf::build(&t, &perm, &team, SortVariant::AllOpts);
            let nested = crate::csf::nested::build(&t, &perm, &team, SortVariant::AllOpts);
            crate::csf::nested::assert_equivalent(&flat, &nested);
        }
        run_config(&t, 4, CsfAlloc::All, &MttkrpConfig::default(), 2);
    }

    #[test]
    fn specialized_dispatch_is_bit_identical_to_generic() {
        // The fixed-width kernels must not merely be close — they perform
        // the same operations in the same order, so outputs are equal to
        // the last bit. Privatized + root paths are deterministic (task-
        // ordered reduction), which makes exact comparison meaningful.
        for rank in SPECIALIZED_RANKS {
            let t = synth::power_law(&[30, 14, 40], 2_000, 1.8, rank as u64);
            let team = TaskTeam::new(3);
            let set = CsfSet::build(&t, CsfAlloc::Two, &team, SortVariant::AllOpts);
            let factors = factors_for(&t, rank, 3);
            for access in ALL_ACCESS {
                let generic = MttkrpConfig {
                    access,
                    specialize: false,
                    priv_threshold: 1e9,
                    ..Default::default()
                };
                let special = MttkrpConfig {
                    specialize: true,
                    ..generic
                };
                let mut ws_g = MttkrpWorkspace::new(&generic, 3);
                let mut ws_s = MttkrpWorkspace::new(&special, 3);
                for mode in 0..t.order() {
                    let mut a = Matrix::zeros(t.dims()[mode], rank);
                    let mut b = Matrix::zeros(t.dims()[mode], rank);
                    mttkrp(&set, &factors, mode, &mut a, &mut ws_g, &team, &generic);
                    mttkrp(&set, &factors, mode, &mut b, &mut ws_s, &team, &special);
                    assert_eq!(
                        a.as_slice(),
                        b.as_slice(),
                        "rank {rank} mode {mode} access {access:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn specialized_dispatch_matches_reference_under_locks() {
        // The lock path interleaves task updates nondeterministically, so
        // compare against the COO reference (within fp tolerance) rather
        // than bit-for-bit.
        let t = synth::power_law(&[20, 12, 28], 1_500, 1.5, 17);
        for rank in SPECIALIZED_RANKS {
            let cfg = MttkrpConfig {
                priv_threshold: 0.0,
                specialize: true,
                ..Default::default()
            };
            run_config(&t, rank, CsfAlloc::Two, &cfg, 4);
        }
    }

    #[test]
    fn specialized_tiled_is_bit_identical_to_generic() {
        let t = synth::power_law(&[25, 18, 33], 2_000, 1.8, 29);
        let rank = 16;
        let factors = factors_for(&t, rank, 5);
        let team = TaskTeam::new(2);
        for mode in 0..t.order() {
            let tiled = crate::tiling::TiledCsf::build(&t, mode, 2, &team, SortVariant::AllOpts);
            for access in ALL_ACCESS {
                let generic = MttkrpConfig {
                    access,
                    specialize: false,
                    ..Default::default()
                };
                let special = MttkrpConfig {
                    specialize: true,
                    ..generic
                };
                let mut a = Matrix::zeros(t.dims()[mode], rank);
                let mut b = Matrix::zeros(t.dims()[mode], rank);
                mttkrp_tiled(&tiled, &factors, &mut a, &team, &generic);
                mttkrp_tiled(&tiled, &factors, &mut b, &team, &special);
                assert_eq!(a.as_slice(), b.as_slice(), "mode {mode} access {access:?}");
            }
        }
    }

    #[test]
    fn empty_tensor_zeroes_output() {
        let t = SparseTensor::new(vec![3, 4, 5]);
        let team = TaskTeam::new(2);
        let set = CsfSet::build(&t, CsfAlloc::One, &team, SortVariant::AllOpts);
        let factors = factors_for(&t, 3, 1);
        let cfg = MttkrpConfig::default();
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        let mut out = Matrix::filled(4, 3, 9.0);
        mttkrp(&set, &factors, 1, &mut out, &mut ws, &team, &cfg);
        assert!(out.approx_eq(&Matrix::zeros(4, 3), 0.0));
    }

    #[test]
    fn rank_one_decomposition_kernel() {
        let t = synth::random_uniform(&[10, 12, 8], 300, 21);
        run_config(&t, 1, CsfAlloc::Two, &MttkrpConfig::default(), 2);
    }

    #[test]
    fn tiled_mttkrp_matches_reference() {
        let t = synth::power_law(&[25, 18, 33], 2_500, 1.8, 31);
        let rank = 5;
        let factors = factors_for(&t, rank, 11);
        for ntasks in [1usize, 3] {
            let team = TaskTeam::new(ntasks);
            for mode in 0..3 {
                let tiled = crate::tiling::TiledCsf::build(
                    &t,
                    mode,
                    ntasks,
                    &team,
                    splatt_tensor::SortVariant::AllOpts,
                );
                for access in ALL_ACCESS {
                    let cfg = MttkrpConfig {
                        access,
                        ..Default::default()
                    };
                    let mut out = Matrix::zeros(t.dims()[mode], rank);
                    mttkrp_tiled(&tiled, &factors, &mut out, &team, &cfg);
                    let expect = mttkrp_coo(&t, &factors, mode);
                    assert!(
                        out.approx_eq(&expect, 1e-9),
                        "tiled mode {mode} ntasks {ntasks} access {access:?}: diff {}",
                        out.max_abs_diff(&expect)
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_with_more_tiles_than_tasks() {
        let t = synth::random_uniform(&[30, 20, 25], 1_500, 41);
        let rank = 4;
        let factors = factors_for(&t, rank, 2);
        let team = TaskTeam::new(2);
        // 7 tiles over 2 tasks: block partition must cover all tiles
        let tiled =
            crate::tiling::TiledCsf::build(&t, 1, 7, &team, splatt_tensor::SortVariant::AllOpts);
        let cfg = MttkrpConfig::default();
        let mut out = Matrix::zeros(t.dims()[1], rank);
        mttkrp_tiled(&tiled, &factors, &mut out, &team, &cfg);
        assert!(out.approx_eq(&mttkrp_coo(&t, &factors, 1), 1e-9));
    }

    #[test]
    fn privatization_heuristic_reproduces_paper_decisions() {
        // Paper Section V-D.2: YELP needs locks beyond ~2-3 tasks, NELL-2
        // stays privatized at every measured task count (1..32).
        let sorted_middle = |dims: [usize; 3]| {
            let mut d = dims.to_vec();
            d.sort_unstable();
            d[1]
        };
        let yelp_mid = sorted_middle([41_000, 11_000, 75_000]);
        let nell_mid = sorted_middle([12_000, 9_000, 29_000]);
        assert!(use_privatization(yelp_mid, 2, 8_000_000, 0.02));
        assert!(!use_privatization(yelp_mid, 4, 8_000_000, 0.02));
        assert!(!use_privatization(yelp_mid, 32, 8_000_000, 0.02));
        for t in [1usize, 2, 4, 8, 16, 32] {
            assert!(
                use_privatization(nell_mid, t, 77_000_000, 0.02),
                "tasks {t}"
            );
        }
    }

    #[test]
    fn uses_locks_reporting() {
        let t = synth::power_law(&[400, 150, 500], 2_000, 1.5, 2);
        let team = TaskTeam::new(4);
        let set = CsfSet::build(&t, CsfAlloc::Two, &team, SortVariant::AllOpts);
        let cfg = MttkrpConfig::default();
        // roots (modes with their own CSF) never lock
        assert!(!uses_locks(&set, 1, 4, &cfg)); // shortest: root of csf0
        assert!(!uses_locks(&set, 2, 4, &cfg)); // longest: root of csf1
                                                // middle mode: dim 400 * 4 tasks = 1600 > 0.02 * 2000 => locks
        assert!(uses_locks(&set, 0, 4, &cfg));
        // with a generous threshold it privatizes instead
        let cfg2 = MttkrpConfig {
            priv_threshold: 10.0,
            ..cfg
        };
        assert!(!uses_locks(&set, 0, 4, &cfg2));
    }

    #[test]
    #[should_panic(expected = "output rows")]
    fn shape_mismatch_panics() {
        let t = synth::random_uniform(&[5, 6, 7], 50, 1);
        let team = TaskTeam::new(1);
        let set = CsfSet::build(&t, CsfAlloc::One, &team, SortVariant::AllOpts);
        let factors = factors_for(&t, 2, 1);
        let cfg = MttkrpConfig::default();
        let mut ws = MttkrpWorkspace::new(&cfg, 1);
        let mut out = Matrix::zeros(5, 2); // wrong: mode 1 needs 6 rows
        mttkrp(&set, &factors, 1, &mut out, &mut ws, &team, &cfg);
    }
}
