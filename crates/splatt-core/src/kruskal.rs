//! The Kruskal (rank-decomposed) model produced by CP-ALS.

use crate::reference::kruskal_value;
use splatt_dense::Matrix;
use splatt_tensor::SparseTensor;

/// A rank-`R` Kruskal tensor: weights `lambda` and one column-normalized
/// factor matrix per mode. The modeled value at coordinate `(i_1..i_N)` is
/// `sum_r lambda[r] * prod_m factors[m][i_m][r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct KruskalModel {
    /// Component weights (column norms absorbed during ALS).
    pub lambda: Vec<f64>,
    /// One `dims[m] x rank` factor matrix per mode.
    pub factors: Vec<Matrix>,
}

impl KruskalModel {
    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.factors.len()
    }

    /// Modeled value at one coordinate.
    pub fn value_at(&self, coord: &[u32]) -> f64 {
        kruskal_value(&self.lambda, &self.factors, coord)
    }

    /// Component indices sorted by descending weight — "top components"
    /// for pattern-extraction use cases (the paper's motivating
    /// application domain).
    pub fn components_by_weight(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.rank()).collect();
        idx.sort_by(|&a, &b| self.lambda[b].total_cmp(&self.lambda[a]));
        idx
    }

    /// The `top_k` highest-loading row indices of component `r` in mode
    /// `m` — e.g. "which users load on this pattern".
    pub fn top_rows(&self, m: usize, r: usize, top_k: usize) -> Vec<(usize, f64)> {
        let f = &self.factors[m];
        let mut rows: Vec<(usize, f64)> = (0..f.rows()).map(|i| (i, f[(i, r)])).collect();
        rows.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        rows.truncate(top_k);
        rows
    }

    /// Exact fit of this model against a sparse tensor, computed naively:
    /// `1 - ||X - Z||_F / ||X||_F`, where the residual norm accounts for
    /// both the stored nonzeros and the model's mass on zero entries.
    /// Assumes coalesced input (duplicate coordinates skew `||X||`).
    ///
    /// `||X - Z||^2 = ||X||^2 - 2 <X, Z> + ||Z||^2`, with `<X, Z>` summed
    /// over stored nonzeros and `||Z||^2` computed from the factor
    /// Gramians — exact and cheap even for large sparse tensors.
    pub fn fit_to(&self, tensor: &SparseTensor) -> f64 {
        let norm_x_sq = tensor.norm_squared();
        if norm_x_sq == 0.0 {
            return 0.0;
        }
        let inner: f64 = (0..tensor.nnz())
            .map(|x| tensor.vals()[x] * self.value_at(&tensor.coord(x)))
            .sum();
        let norm_z_sq = self.norm_squared();
        let residual_sq = (norm_x_sq - 2.0 * inner + norm_z_sq).max(0.0);
        1.0 - (residual_sq.sqrt() / norm_x_sq.sqrt())
    }

    /// Serialize the model as plain text: a header line
    /// `splatt-kruskal <rank> <order>`, the lambda vector, then each
    /// factor as `mode <rows> <cols>` followed by its rows.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write(&self, w: impl std::io::Write) -> std::io::Result<()> {
        use std::io::Write as _;
        let mut w = std::io::BufWriter::new(w);
        writeln!(w, "splatt-kruskal {} {}", self.rank(), self.order())?;
        let lambda: Vec<String> = self.lambda.iter().map(|l| format!("{l:.17e}")).collect();
        writeln!(w, "{}", lambda.join(" "))?;
        for f in &self.factors {
            writeln!(w, "mode {} {}", f.rows(), f.cols())?;
            for i in 0..f.rows() {
                let row: Vec<String> = f.row(i).iter().map(|v| format!("{v:.17e}")).collect();
                writeln!(w, "{}", row.join(" "))?;
            }
        }
        w.flush()
    }

    /// Parse a model written by [`KruskalModel::write`].
    ///
    /// # Errors
    /// Returns `InvalidData` on any malformed content.
    pub fn read(r: impl std::io::Read) -> std::io::Result<KruskalModel> {
        use std::io::{BufRead, BufReader, Error, ErrorKind};
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());
        let mut lines = BufReader::new(r).lines();
        let mut next = || -> std::io::Result<String> {
            lines
                .next()
                .ok_or_else(|| bad("unexpected end of model file"))?
        };

        let header = next()?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 3 || parts[0] != "splatt-kruskal" {
            return Err(bad("missing splatt-kruskal header"));
        }
        let rank: usize = parts[1].parse().map_err(|_| bad("bad rank"))?;
        let order: usize = parts[2].parse().map_err(|_| bad("bad order"))?;

        let lambda: Vec<f64> = next()?
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| bad("bad lambda value")))
            .collect::<Result<_, _>>()?;
        if lambda.len() != rank {
            return Err(bad("lambda length does not match rank"));
        }

        let mut factors = Vec::with_capacity(order);
        for _ in 0..order {
            let head = next()?;
            let parts: Vec<&str> = head.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "mode" {
                return Err(bad("missing mode header"));
            }
            let rows: usize = parts[1].parse().map_err(|_| bad("bad row count"))?;
            let cols: usize = parts[2].parse().map_err(|_| bad("bad col count"))?;
            if cols != rank {
                return Err(bad("factor columns do not match rank"));
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows {
                let line = next()?;
                let before = data.len();
                for t in line.split_whitespace() {
                    data.push(t.parse().map_err(|_| bad("bad factor value"))?);
                }
                if data.len() - before != cols {
                    return Err(bad("wrong number of values in factor row"));
                }
            }
            factors.push(Matrix::from_vec(rows, cols, data));
        }
        Ok(KruskalModel { lambda, factors })
    }

    /// `||Z||^2` via the Hadamard product of factor Gramians:
    /// `lambda^T (hadamard_m A_m^T A_m) lambda`.
    ///
    /// Single pass over the factors: both the running Hadamard product
    /// and the per-mode Gramian live in one packed upper-triangle buffer
    /// each (the Gramian is symmetric, so only `r <= s` is stored and the
    /// final bilinear form counts each off-diagonal entry twice). No
    /// `rank x rank` matrices are materialized.
    pub fn norm_squared(&self) -> f64 {
        let rank = self.rank();
        let packed = rank * (rank + 1) / 2;
        let mut had = vec![1.0; packed];
        let mut gram = vec![0.0; packed];
        for f in &self.factors {
            gram.iter_mut().for_each(|g| *g = 0.0);
            for i in 0..f.rows() {
                let row = f.row(i);
                let mut p = 0;
                for r in 0..rank {
                    let fr = row[r];
                    for &fs in &row[r..] {
                        gram[p] += fr * fs;
                        p += 1;
                    }
                }
            }
            for (h, &g) in had.iter_mut().zip(&gram) {
                *h *= g;
            }
        }
        let mut total = 0.0;
        let mut p = 0;
        for r in 0..rank {
            let lr = self.lambda[r];
            total += lr * had[p] * lr;
            p += 1;
            for s in r + 1..rank {
                total += 2.0 * (lr * had[p] * self.lambda[s]);
                p += 1;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank1_model() -> KruskalModel {
        // Z = 2 * a ⊗ b with a = [1, 0], b = [0, 1] -> Z[0][1] = 2
        KruskalModel {
            lambda: vec![2.0],
            factors: vec![
                Matrix::from_vec(2, 1, vec![1.0, 0.0]),
                Matrix::from_vec(2, 1, vec![0.0, 1.0]),
            ],
        }
    }

    #[test]
    fn value_at_rank1() {
        let m = rank1_model();
        assert_eq!(m.value_at(&[0, 1]), 2.0);
        assert_eq!(m.value_at(&[1, 1]), 0.0);
    }

    #[test]
    fn norm_squared_matches_dense_sum() {
        let m = rank1_model();
        // dense Z has a single entry 2 -> ||Z||^2 = 4
        assert!((m.norm_squared() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn norm_squared_matches_dense_oracle_on_random_model() {
        // Regression pin for the single-pass Gramian path: reconstruct the
        // full dense tensor and sum squares the slow way.
        let m = KruskalModel {
            lambda: vec![1.5, -0.75, 0.3],
            factors: vec![
                Matrix::random(4, 3, 21),
                Matrix::random(3, 3, 22),
                Matrix::random(5, 3, 23),
            ],
        };
        let mut dense_sq = 0.0;
        for i in 0..4u32 {
            for j in 0..3u32 {
                for k in 0..5u32 {
                    let v = m.value_at(&[i, j, k]);
                    dense_sq += v * v;
                }
            }
        }
        let got = m.norm_squared();
        assert!(
            (got - dense_sq).abs() <= 1e-12 * dense_sq.max(1.0),
            "norm_squared {got} vs dense oracle {dense_sq}"
        );
        // Degenerate shapes stay finite and exact.
        let empty = KruskalModel {
            lambda: vec![],
            factors: vec![Matrix::zeros(2, 0), Matrix::zeros(3, 0)],
        };
        assert_eq!(empty.norm_squared(), 0.0);
    }

    #[test]
    fn perfect_fit_is_one() {
        let m = rank1_model();
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 2.0)]);
        assert!((m.fit_to(&t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_model_fit_is_zero() {
        let m = KruskalModel {
            lambda: vec![0.0],
            factors: vec![Matrix::zeros(2, 1), Matrix::zeros(2, 1)],
        };
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 0], 3.0)]);
        assert!((m.fit_to(&t) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn components_sorted_by_weight() {
        let m = KruskalModel {
            lambda: vec![1.0, 5.0, 3.0],
            factors: vec![Matrix::zeros(2, 3), Matrix::zeros(2, 3)],
        };
        assert_eq!(m.components_by_weight(), vec![1, 2, 0]);
    }

    #[test]
    fn write_read_roundtrip() {
        let m = KruskalModel {
            lambda: vec![2.5, 0.125],
            factors: vec![
                Matrix::random(4, 2, 1),
                Matrix::random(3, 2, 2),
                Matrix::random(5, 2, 3),
            ],
        };
        let mut buf = Vec::new();
        m.write(&mut buf).unwrap();
        let back = KruskalModel::read(buf.as_slice()).unwrap();
        assert_eq!(back.lambda, m.lambda);
        for (a, b) in back.factors.iter().zip(&m.factors) {
            assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(KruskalModel::read("not a model".as_bytes()).is_err());
        assert!(KruskalModel::read("splatt-kruskal 2 3\n1.0\n".as_bytes()).is_err());
        // truncated factor section
        let partial = "splatt-kruskal 1 2\n1.0\nmode 2 1\n0.5\n";
        assert!(KruskalModel::read(partial.as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_rank_mismatch() {
        let text = "splatt-kruskal 2 1\n1.0 2.0\nmode 2 3\n1 2 3\n4 5 6\n";
        assert!(KruskalModel::read(text.as_bytes()).is_err());
    }

    #[test]
    fn top_rows_orders_by_magnitude() {
        let m = KruskalModel {
            lambda: vec![1.0],
            factors: vec![
                Matrix::from_vec(3, 1, vec![0.1, -0.9, 0.5]),
                Matrix::zeros(2, 1),
            ],
        };
        let top = m.top_rows(0, 0, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
    }
}
