//! Model diagnostics: the core consistency diagnostic (CORCONDIA).
//!
//! CP-ALS always returns *some* rank-`R` model; CORCONDIA (Bro & Kiers,
//! 2003) measures whether a trilinear model of that rank is actually
//! appropriate. It fits an unconstrained Tucker core `G` through the CP
//! factors by least squares and scores how close `G` is to the
//! superdiagonal identity the CP model implies:
//!
//! ```text
//! corcondia = 100 * (1 - ||G - I_sd||_F^2 / R)
//! ```
//!
//! Values near 100 mean the rank is well chosen; low or negative values
//! flag overfactoring. For the sparse case the least-squares core is
//! `g[p,q,r] = sum_nz val * A+[p,i] * B+[q,j] * C+[r,k]` with `M+` the
//! Moore-Penrose pseudo-inverses of the factors, computable in one pass
//! over the nonzeros (`O(nnz * R^3)` — fine for the small `R` used when
//! scanning for the right rank).
//!
//! CORCONDIA is defined for models of the *full* tensor — stored zeros
//! and all — i.e. models produced by [`crate::cp_als`]. It is **not**
//! meaningful for [`crate::tensor_complete`] models, which are fitted to
//! observed entries only: evaluating the core against the zero-filled
//! tensor then reflects the missing-data pattern, not the model quality.

use crate::kruskal::KruskalModel;
use splatt_dense::{gemm, jacobi_eigen, mat_ata, Matrix};
use splatt_tensor::SparseTensor;

/// Left pseudo-inverse `(M^T M)^+ M^T` of a tall matrix (`R x I` result).
fn pinv_left(m: &Matrix) -> Matrix {
    let g = mat_ata(m); // R x R
    let ginv = jacobi_eigen(&g).pseudo_inverse(1e-12);
    gemm(&ginv, &m.transpose())
}

/// Core consistency diagnostic of `model` against the 3rd-order `tensor`.
///
/// Returns a percentage ≤ 100. The model's `lambda` is absorbed into the
/// last factor before the core is fitted (CORCONDIA is defined on
/// unweighted factors).
///
/// # Panics
/// Panics if the tensor (or model) is not 3rd order, or shapes disagree.
pub fn corcondia(model: &KruskalModel, tensor: &SparseTensor) -> f64 {
    assert_eq!(
        tensor.order(),
        3,
        "corcondia is defined here for 3rd-order tensors"
    );
    assert_eq!(model.order(), 3, "model must be 3rd order");
    let rank = model.rank();
    for (m, f) in model.factors.iter().enumerate() {
        assert_eq!(f.rows(), tensor.dims()[m], "factor {m} shape mismatch");
    }
    if tensor.nnz() == 0 || rank == 0 {
        return 0.0;
    }

    // absorb lambda into the last factor
    let a = &model.factors[0];
    let b = &model.factors[1];
    let mut c = model.factors[2].clone();
    for i in 0..c.rows() {
        for (r, &l) in model.lambda.iter().enumerate() {
            c[(i, r)] *= l;
        }
    }

    let ap = pinv_left(a); // R x I
    let bp = pinv_left(b); // R x J
    let cp = pinv_left(&c); // R x K

    // g[p,q,r] = sum_nz val * ap[p,i] * bp[q,j] * cp[r,k]
    let mut core = vec![0.0; rank * rank * rank];
    for x in 0..tensor.nnz() {
        let i = tensor.ind(0)[x] as usize;
        let j = tensor.ind(1)[x] as usize;
        let k = tensor.ind(2)[x] as usize;
        let v = tensor.vals()[x];
        for p in 0..rank {
            let vp = v * ap[(p, i)];
            if vp == 0.0 {
                continue;
            }
            for q in 0..rank {
                let vpq = vp * bp[(q, j)];
                let base = (p * rank + q) * rank;
                for r in 0..rank {
                    core[base + r] += vpq * cp[(r, k)];
                }
            }
        }
    }

    // distance from the superdiagonal identity
    let mut dist_sq = 0.0;
    for p in 0..rank {
        for q in 0..rank {
            for r in 0..rank {
                let target = if p == q && q == r { 1.0 } else { 0.0 };
                let d = core[(p * rank + q) * rank + r] - target;
                dist_sq += d * d;
            }
        }
    }
    100.0 * (1.0 - dist_sq / rank as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cp_als, CpalsOptions};
    use splatt_tensor::synth;

    #[test]
    fn exact_rank_model_scores_near_100() {
        let (tensor, _) = synth::planted_dense(&[12, 10, 8], 3, 0.0, 17);
        let opts = CpalsOptions {
            rank: 3,
            max_iters: 80,
            tolerance: 1e-10,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert!(
            out.fit > 0.98,
            "fit {} — model must converge first",
            out.fit
        );
        let cc = corcondia(&out.model, &tensor);
        assert!(cc > 90.0, "corcondia {cc} for exact-rank model");
    }

    #[test]
    fn overfactored_model_scores_low() {
        // true rank 2, fitted rank 5: classic overfactoring
        let (tensor, _) = synth::planted_dense(&[12, 10, 8], 2, 0.0, 23);
        let opts = CpalsOptions {
            rank: 5,
            max_iters: 80,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        let cc = corcondia(&out.model, &tensor);
        assert!(cc < 70.0, "corcondia {cc} should flag overfactoring");
    }

    #[test]
    fn rank_one_is_always_perfect() {
        // with R = 1 the fitted core is a scalar equal to the LS
        // projection; for a converged rank-1 model it is ~1
        let (tensor, _) = synth::planted_dense(&[8, 8, 8], 1, 0.0, 3);
        let opts = CpalsOptions {
            rank: 1,
            max_iters: 40,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        let cc = corcondia(&out.model, &tensor);
        assert!(cc > 99.0, "corcondia {cc}");
    }

    #[test]
    fn empty_tensor_scores_zero() {
        let t = SparseTensor::new(vec![4, 4, 4]);
        let model = KruskalModel {
            lambda: vec![1.0],
            factors: vec![
                Matrix::random(4, 1, 1),
                Matrix::random(4, 1, 2),
                Matrix::random(4, 1, 3),
            ],
        };
        assert_eq!(corcondia(&model, &t), 0.0);
    }

    #[test]
    #[should_panic(expected = "3rd-order")]
    fn four_mode_tensor_rejected() {
        let t = SparseTensor::new(vec![3, 3, 3, 3]);
        let model = KruskalModel {
            lambda: vec![1.0],
            factors: vec![
                Matrix::zeros(3, 1),
                Matrix::zeros(3, 1),
                Matrix::zeros(3, 1),
                Matrix::zeros(3, 1),
            ],
        };
        let _ = corcondia(&model, &t);
    }
}
