//! Mode tiling: lock-free MTTKRP without output replication.
//!
//! SPLATT's third answer to the scatter problem (besides hashed locks and
//! privatized replicas) is to *tile* the tensor along the output mode:
//! nonzeros are partitioned into contiguous output-row ranges balanced by
//! nonzero count, one tile per task. Each task then runs an ordinary
//! root-mode (synchronization-free) kernel over its own tile — output
//! rows are disjoint across tiles by construction, memory stays at one
//! representation per tiled mode, and no reduction is needed.
//!
//! The Chapel-port paper explicitly omits tiling ("SPLATT's optional
//! feature to tile the modes of a tensor was omitted from our port") and
//! names it future work; this module implements it, and the benchmark
//! suite's ablation D compares all three synchronization regimes.
//!
//! The trade-off: tiles fragment fibers. A fiber whose nonzeros span two
//! output tiles is traversed by both tasks (its non-output levels repeat
//! per tile), so tensors whose fibers are long *in the output mode's
//! tree position* pay duplicated upper-level work.

use crate::csf::Csf;
use splatt_par::partition;
use splatt_par::TaskTeam;
use splatt_tensor::{sort, SortVariant, SparseTensor};

/// A tensor tiled along one mode: `tiles[t]` holds the nonzeros whose
/// index in `mode` falls in `row_bounds[t]..row_bounds[t + 1]`, stored as
/// a CSF *rooted at that mode* so each tile runs the root kernel.
#[derive(Debug, Clone)]
pub struct TiledCsf {
    /// The output mode this tiling serves.
    mode: usize,
    /// `ntiles + 1` row boundaries in `mode`'s index space.
    row_bounds: Vec<usize>,
    /// One CSF per tile (possibly empty).
    tiles: Vec<Csf>,
}

impl TiledCsf {
    /// Tile `tensor` along `mode` into `ntiles` contiguous row ranges of
    /// approximately equal nonzero count.
    ///
    /// # Panics
    /// Panics if `ntiles == 0` or `mode` is out of range.
    pub fn build(
        tensor: &SparseTensor,
        mode: usize,
        ntiles: usize,
        team: &TaskTeam,
        variant: SortVariant,
    ) -> Self {
        Self::build_guarded(tensor, mode, ntiles, team, variant, None)
    }

    /// [`TiledCsf::build`] under run governance: the per-tile sorts poll
    /// `guard` so cancellation stops a long tiling pass early; empty
    /// tiles are substituted for any tile whose sort was abandoned.
    ///
    /// # Panics
    /// Panics if `ntiles == 0` or `mode` is out of range.
    pub fn build_guarded(
        tensor: &SparseTensor,
        mode: usize,
        ntiles: usize,
        team: &TaskTeam,
        variant: SortVariant,
        guard: Option<&splatt_guard::RunGuard>,
    ) -> Self {
        assert!(ntiles > 0, "ntiles must be positive");
        assert!(mode < tensor.order(), "mode out of range");
        let dim = tensor.dims()[mode];

        // balance tiles by nonzeros per output row
        let mut row_nnz = vec![0usize; dim];
        for &i in tensor.ind(mode) {
            row_nnz[i as usize] += 1;
        }
        let prefix = partition::prefix_sum(&row_nnz);
        let row_bounds = partition::weighted(&prefix, ntiles);

        // assign each nonzero to its tile
        let tile_of_row = |row: usize| -> usize {
            // row_bounds is monotone; find the tile containing `row`
            match row_bounds.binary_search(&row) {
                // boundary hit: the row starts tile `t` (skip duplicates)
                Ok(t) => row_bounds[t..]
                    .iter()
                    .position(|&b| b > row)
                    .map(|off| t + off - 1)
                    .unwrap_or(ntiles - 1),
                Err(ins) => ins - 1,
            }
        };

        let order = tensor.order();
        let mut tile_entries: Vec<(Vec<Vec<u32>>, Vec<f64>)> = (0..ntiles)
            .map(|_| (vec![Vec::new(); order], Vec::new()))
            .collect();
        for x in 0..tensor.nnz() {
            let t = tile_of_row(tensor.ind(mode)[x] as usize);
            let (inds, vals) = &mut tile_entries[t];
            for (m, ind) in inds.iter_mut().enumerate() {
                ind.push(tensor.ind(m)[x]);
            }
            vals.push(tensor.vals()[x]);
        }

        // perm rooted at the tiled mode, remaining modes ascending
        let mut perm = Vec::with_capacity(order);
        perm.push(mode);
        perm.extend((0..order).filter(|&m| m != mode));

        let tiles = tile_entries
            .into_iter()
            .map(|(inds, vals)| {
                let mut t = SparseTensor::from_parts(tensor.dims().to_vec(), inds, vals);
                sort::sort_by_perm_guarded(&mut t, &perm, team, variant, guard);
                if guard.is_some_and(|g| g.is_cancelled()) && !t.is_sorted_by(&perm) {
                    let empty = SparseTensor::new(tensor.dims().to_vec());
                    Csf::from_sorted(&empty, &perm)
                } else {
                    Csf::from_sorted(&t, &perm)
                }
            })
            .collect();

        TiledCsf {
            mode,
            row_bounds,
            tiles,
        }
    }

    /// The mode this tiling serves.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of tiles.
    pub fn ntiles(&self) -> usize {
        self.tiles.len()
    }

    /// Tile `t`'s CSF.
    pub fn tile(&self, t: usize) -> &Csf {
        &self.tiles[t]
    }

    /// Output-row range owned by tile `t`.
    pub fn rows_of(&self, t: usize) -> std::ops::Range<usize> {
        self.row_bounds[t]..self.row_bounds[t + 1]
    }

    /// Total nonzeros across tiles (equals the source tensor's count).
    pub fn nnz(&self) -> usize {
        self.tiles.iter().map(|t| t.nnz()).sum()
    }

    /// Bytes across all tile CSFs.
    pub fn storage_bytes(&self) -> usize {
        self.tiles.iter().map(|t| t.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    fn team() -> TaskTeam {
        TaskTeam::new(2)
    }

    #[test]
    fn tiles_partition_the_nonzeros() {
        let t = synth::power_law(&[40, 25, 30], 3_000, 1.8, 7);
        for mode in 0..3 {
            let tiled = TiledCsf::build(&t, mode, 4, &team(), SortVariant::AllOpts);
            assert_eq!(tiled.nnz(), t.nnz(), "mode {mode}");
            assert_eq!(tiled.ntiles(), 4);
            // row ranges cover the dim and are disjoint
            assert_eq!(tiled.rows_of(0).start, 0);
            assert_eq!(tiled.rows_of(3).end, t.dims()[mode]);
            for k in 0..3 {
                assert_eq!(tiled.rows_of(k).end, tiled.rows_of(k + 1).start);
            }
        }
    }

    #[test]
    fn every_tile_entry_is_in_its_row_range() {
        let t = synth::power_law(&[30, 20, 25], 2_000, 2.0, 9);
        let mode = 1;
        let tiled = TiledCsf::build(&t, mode, 3, &team(), SortVariant::AllOpts);
        for k in 0..tiled.ntiles() {
            let range = tiled.rows_of(k);
            let csf = tiled.tile(k);
            // tile CSFs are rooted at `mode`, so level-0 fids are its rows
            for &fid in csf.fids(0) {
                assert!(
                    range.contains(&(fid as usize)),
                    "tile {k} contains row {fid} outside {range:?}"
                );
            }
        }
    }

    #[test]
    fn tiles_balance_nonzeros_roughly() {
        let t = synth::random_uniform(&[64, 32, 48], 8_000, 3);
        let tiled = TiledCsf::build(&t, 0, 4, &team(), SortVariant::AllOpts);
        for k in 0..4 {
            let nnz = tiled.tile(k).nnz();
            assert!(
                nnz > 1_000 && nnz < 3_000,
                "tile {k} holds {nnz} of 8000 nonzeros"
            );
        }
    }

    #[test]
    fn skewed_tensor_tiles_stay_legal() {
        // all nonzeros in one row: one fat tile, others empty
        let mut t = SparseTensor::new(vec![10, 10, 10]);
        for j in 0..10u32 {
            for k in 0..10u32 {
                t.push(&[5, j, k], 1.0);
            }
        }
        let tiled = TiledCsf::build(&t, 0, 4, &team(), SortVariant::AllOpts);
        assert_eq!(tiled.nnz(), 100);
        let nonempty: Vec<usize> = (0..4).filter(|&k| tiled.tile(k).nnz() > 0).collect();
        assert_eq!(nonempty.len(), 1, "all nonzeros share one row");
    }

    #[test]
    fn more_tiles_than_rows() {
        let t = synth::random_uniform(&[3, 20, 20], 500, 5);
        let tiled = TiledCsf::build(&t, 0, 8, &team(), SortVariant::AllOpts);
        assert_eq!(tiled.nnz(), 500);
        assert_eq!(tiled.ntiles(), 8);
    }

    #[test]
    fn empty_tensor_tiles() {
        let t = SparseTensor::new(vec![5, 5, 5]);
        let tiled = TiledCsf::build(&t, 2, 3, &team(), SortVariant::AllOpts);
        assert_eq!(tiled.nnz(), 0);
    }
}
