//! Tensor completion: CP factorization of *observed entries only*.
//!
//! SPLATT ships "CP with missing values (i.e., tensor completion)"
//! alongside least-squares CP (paper Section III; Smith et al., "HPC
//! formulations of optimization algorithms for tensor completion"). Where
//! [`crate::cp_als`] treats unstored cells as zeros, completion fits only
//! the stored (observed) cells and is the right tool for
//! recommender-style data where missing means *unknown*.
//!
//! The solver is row-wise alternating least squares: updating mode `n`
//! solves, independently for every row `i`,
//!
//! ```text
//! ( sum_{x in obs(i)} k_x k_x^T + mu I ) a_i = sum_{x in obs(i)} v_x k_x
//! ```
//!
//! where `k_x` is the Khatri-Rao row `prod_{m != n} A_m[i_m]` of
//! observation `x` and `mu` a ridge regularizer. Rows are independent, so
//! the kernel parallelizes over CSF slices of a representation rooted at
//! `n` with no synchronization at all — completion always gets the
//! "root-mode" treatment, using one CSF per mode ([`CsfAlloc::All`]).

use crate::csf::{Csf, CsfAlloc, CsfSet};
use crate::kruskal::KruskalModel;
use splatt_dense::{cholesky_factor, cholesky_solve, Matrix};
use splatt_par::{partition, TaskTeam, TeamConfig};
use splatt_tensor::{SortVariant, SparseTensor};

/// Configuration for [`tensor_complete`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionOptions {
    /// Factorization rank.
    pub rank: usize,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Stop when train RMSE improves by less than this between sweeps
    /// (`0.0` = always run `max_iters`).
    pub tolerance: f64,
    /// Ridge regularization `mu` (also keeps rank-deficient rows solvable).
    pub regularization: f64,
    /// Tasks in the team.
    pub ntasks: usize,
    /// Seed for factor initialization.
    pub seed: u64,
    /// Spin-before-park count for the task team.
    pub spin_count: u32,
}

impl Default for CompletionOptions {
    fn default() -> Self {
        CompletionOptions {
            rank: 10,
            max_iters: 50,
            tolerance: 1e-5,
            regularization: 1e-2,
            ntasks: 1,
            seed: 0xBEEF,
            spin_count: 300,
        }
    }
}

/// Result of a completion run.
#[derive(Debug)]
pub struct CompletionOutput {
    /// The fitted model (`lambda` is all ones; completion does not
    /// normalize columns).
    pub model: KruskalModel,
    /// Train RMSE after each sweep.
    pub rmse_trace: Vec<f64>,
    /// Final train RMSE.
    pub rmse: f64,
    /// Sweeps executed.
    pub iterations: usize,
}

/// Root-mean-square error of `model` over the *stored entries* of
/// `tensor` (the completion loss; zeros outside the pattern are ignored).
pub fn rmse_observed(model: &KruskalModel, tensor: &SparseTensor) -> f64 {
    if tensor.nnz() == 0 {
        return 0.0;
    }
    let sse: f64 = (0..tensor.nnz())
        .map(|x| {
            let err = model.value_at(&tensor.coord(x)) - tensor.vals()[x];
            err * err
        })
        .sum();
    (sse / tensor.nnz() as f64).sqrt()
}

/// Factorize the observed entries of `tensor` (ridge-regularized ALS).
///
/// ```
/// use splatt_core::{tensor_complete, rmse_observed, CompletionOptions};
/// use splatt_tensor::synth;
///
/// let (full, _) = synth::planted_dense(&[12, 10, 8], 2, 0.0, 1);
/// let (train, test) = full.split_holdout(0.3, 9);
/// let opts = CompletionOptions { rank: 2, max_iters: 60, tolerance: 0.0,
///                                regularization: 1e-4, ntasks: 2, ..Default::default() };
/// let out = tensor_complete(&train, &opts);
/// // held-out cells of the exactly-low-rank tensor are predicted well
/// assert!(rmse_observed(&out.model, &test) < 0.1);
/// ```
///
/// # Panics
/// Panics if `rank`, `max_iters`, or `ntasks` is zero.
pub fn tensor_complete(tensor: &SparseTensor, opts: &CompletionOptions) -> CompletionOutput {
    assert!(opts.rank > 0, "rank must be positive");
    assert!(opts.max_iters > 0, "max_iters must be positive");
    let team = TaskTeam::with_config(
        opts.ntasks,
        TeamConfig {
            spin_count: opts.spin_count,
        },
    );

    let order = tensor.order();
    let rank = opts.rank;
    // One CSF per mode: every row-wise update walks slices of "its" tree.
    let set = CsfSet::build(tensor, CsfAlloc::All, &team, SortVariant::AllOpts);

    let mut factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        // small positive init keeps early residuals tame
        .map(|(m, &d)| {
            let mut f = Matrix::random(d, rank, opts.seed.wrapping_add(m as u64));
            f.scale(1.0 / rank as f64);
            f
        })
        .collect();

    let mut rmse_trace = Vec::with_capacity(opts.max_iters);
    let mut prev_rmse = f64::INFINITY;
    let mut iterations = 0;

    for _sweep in 0..opts.max_iters {
        iterations += 1;
        for mode in 0..order {
            let csf = set
                .csfs()
                .iter()
                .find(|c| c.dim_perm()[0] == mode)
                .expect("CsfAlloc::All provides a root for every mode");
            update_mode(csf, &mut factors, mode, opts.regularization, &team);
        }
        let model = KruskalModel {
            lambda: vec![1.0; rank],
            factors: factors.clone(),
        };
        let rmse = rmse_observed(&model, tensor);
        rmse_trace.push(rmse);
        if opts.tolerance > 0.0 && (prev_rmse - rmse).abs() < opts.tolerance {
            break;
        }
        prev_rmse = rmse;
    }

    let rmse = rmse_trace.last().copied().unwrap_or(0.0);
    CompletionOutput {
        model: KruskalModel {
            lambda: vec![1.0; rank],
            factors,
        },
        rmse_trace,
        rmse,
        iterations,
    }
}

/// One row-wise least-squares update of `factors[mode]`, walking the CSF
/// rooted at `mode` slice-parallel (rows are independent — no locks).
fn update_mode(csf: &Csf, factors: &mut [Matrix], mode: usize, mu: f64, team: &TaskTeam) {
    let rank = factors[mode].cols();
    debug_assert_eq!(csf.dim_perm()[0], mode);

    // read-only views of the other factors, in tree-level order
    let flevel: Vec<Matrix> = csf.dim_perm().iter().map(|&m| factors[m].clone()).collect();

    let prefix = partition::prefix_sum(csf.slice_nnz());
    let bounds = partition::weighted(&prefix, team.ntasks());

    // each task writes disjoint rows of the output; collect per-task row
    // updates and apply afterwards (keeps the closure free of aliasing)
    type RowUpdates = Vec<(usize, Vec<f64>)>;
    let updates: Vec<splatt_rt::sync::Mutex<RowUpdates>> = (0..team.ntasks())
        .map(|_| splatt_rt::sync::Mutex::new(Vec::new()))
        .collect();
    let bounds_ref = &bounds;
    let flevel_ref = &flevel;
    let updates_ref = &updates;

    let order = csf.order();
    team.coforall(|tid| {
        let mut local = Vec::new();
        let ones = vec![1.0; rank];
        let mut h = Matrix::zeros(rank, rank); // normal matrix per row
        let mut b = vec![0.0; rank];
        let mut rhs = Matrix::zeros(1, rank);
        // per-level Khatri-Rao prefix buffers, reused across every slice
        // this task owns — the subtree walk must not allocate per fiber
        let mut kr_bufs = vec![0.0; (order - 1) * rank];
        for s in bounds_ref[tid]..bounds_ref[tid + 1] {
            h.fill(0.0);
            b.fill(0.0);
            accumulate_subtree(csf, 0, s, flevel_ref, &ones, &mut kr_bufs, &mut h, &mut b);
            for r in 0..rank {
                h[(r, r)] += mu;
            }
            // solve (H + mu I) a = b for this row
            rhs.as_mut_slice().copy_from_slice(&b);
            match cholesky_factor(&h) {
                Ok(l) => cholesky_solve(&l, &mut rhs),
                Err(_) => {
                    // fully-degenerate row (all-zero observations): leave it
                    continue;
                }
            }
            let row_id = csf.fids(0)[s] as usize;
            local.push((row_id, rhs.as_slice().to_vec()));
        }
        *updates_ref[tid].lock() = local;
    });

    let out = &mut factors[mode];
    for slot in &updates {
        for (row_id, vals) in slot.lock().iter() {
            out.row_mut(*row_id).copy_from_slice(vals);
        }
    }
}

/// Walk the subtree under `fiber` at `level`, accumulating every
/// observation's Khatri-Rao row `k = prefix ∘ (rows at deeper levels)`
/// into the per-row normal equations: `h += k k^T`, `b += val * k`.
///
/// `prefix` is the element-wise product of the factor rows along the path
/// from (but excluding) the root to `level`; callers start a slice with a
/// ones vector — the root's own factor row is the unknown being solved.
#[allow(clippy::too_many_arguments)]
fn accumulate_subtree(
    csf: &Csf,
    level: usize,
    fiber: usize,
    flevel: &[Matrix],
    prefix: &[f64],
    kr_bufs: &mut [f64],
    h: &mut Matrix,
    b: &mut [f64],
) {
    let order = csf.order();
    let rank = prefix.len();
    if level == order - 2 {
        // children are the leaf observations
        let (k, _) = kr_bufs.split_at_mut(rank);
        let leaf_fids = csf.fids(order - 1);
        let vals = csf.vals();
        for x in csf.children(level, fiber) {
            let leaf_row = flevel[order - 1].row(leaf_fids[x] as usize);
            for ((kk, &p), &l) in k.iter_mut().zip(prefix).zip(leaf_row) {
                *kk = p * l;
            }
            rank_one_update(h, b, k, vals[x]);
        }
    } else {
        let (next, rest) = kr_bufs.split_at_mut(rank);
        let child_fids = csf.fids(level + 1);
        for c in csf.children(level, fiber) {
            let row = flevel[level + 1].row(child_fids[c] as usize);
            for ((n, &p), &r) in next.iter_mut().zip(prefix).zip(row) {
                *n = p * r;
            }
            accumulate_subtree(csf, level + 1, c, flevel, next, rest, h, b);
        }
    }
}

/// `h += k k^T` (upper triangle mirrored) and `b += val * k`.
fn rank_one_update(h: &mut Matrix, b: &mut [f64], k: &[f64], val: f64) {
    let rank = b.len();
    for p in 0..rank {
        let kp = k[p];
        if kp != 0.0 {
            let row = h.row_mut(p);
            for (q, &kq) in k.iter().enumerate() {
                row[q] += kp * kq;
            }
        }
        b[p] += val * kp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    #[test]
    fn completes_planted_observations() {
        // sample 40% of a planted rank-2 tensor; completion must fit the
        // observed entries tightly
        let (full, _) = synth::planted_dense(&[12, 10, 8], 2, 0.0, 5);
        let mut train = SparseTensor::new(full.dims().to_vec());
        for x in 0..full.nnz() {
            if x % 5 < 2 {
                train.push(&full.coord(x), full.vals()[x]);
            }
        }
        let opts = CompletionOptions {
            rank: 2,
            max_iters: 60,
            tolerance: 0.0,
            regularization: 1e-4,
            ntasks: 2,
            ..Default::default()
        };
        let out = tensor_complete(&train, &opts);
        assert!(out.rmse < 0.05, "train rmse {}", out.rmse);
    }

    #[test]
    fn generalizes_to_held_out_entries() {
        // the defining property of completion: predictions on *unseen*
        // cells of a low-rank tensor are accurate
        let (full, _) = synth::planted_dense(&[14, 12, 10], 2, 0.0, 9);
        let mut train = SparseTensor::new(full.dims().to_vec());
        let mut test = SparseTensor::new(full.dims().to_vec());
        for x in 0..full.nnz() {
            if x % 3 == 0 {
                test.push(&full.coord(x), full.vals()[x]);
            } else {
                train.push(&full.coord(x), full.vals()[x]);
            }
        }
        let opts = CompletionOptions {
            rank: 2,
            max_iters: 80,
            tolerance: 0.0,
            regularization: 1e-4,
            ntasks: 2,
            ..Default::default()
        };
        let out = tensor_complete(&train, &opts);
        let test_rmse = rmse_observed(&out.model, &test);
        let scale = (test.norm_squared() / test.nnz() as f64).sqrt();
        assert!(
            test_rmse < 0.1 * scale,
            "held-out rmse {test_rmse} vs value scale {scale}"
        );
    }

    #[test]
    fn rmse_trace_is_nonincreasing_ish() {
        let (full, _) = synth::planted_dense(&[10, 10, 10], 3, 0.1, 3);
        let opts = CompletionOptions {
            rank: 3,
            max_iters: 15,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        };
        let out = tensor_complete(&full, &opts);
        for w in out.rmse_trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "rmse increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn tolerance_stops_early() {
        let (full, _) = synth::planted_dense(&[8, 8, 8], 2, 0.0, 7);
        let opts = CompletionOptions {
            rank: 2,
            max_iters: 500,
            tolerance: 1e-6,
            ntasks: 1,
            ..Default::default()
        };
        let out = tensor_complete(&full, &opts);
        assert!(out.iterations < 500, "never converged");
    }

    #[test]
    fn unobserved_rows_stay_finite() {
        // a tensor whose mode-0 slice 3 has no observations at all
        let t = SparseTensor::from_entries(
            vec![5, 4, 4],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![1, 1, 1], 2.0),
                (vec![2, 2, 2], 3.0),
                (vec![4, 3, 3], 4.0),
            ],
        );
        let opts = CompletionOptions {
            rank: 2,
            max_iters: 10,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        };
        let out = tensor_complete(&t, &opts);
        for f in &out.model.factors {
            assert!(f.as_slice().iter().all(|v| v.is_finite()));
        }
        assert!(out.rmse.is_finite());
    }

    #[test]
    fn four_mode_completion() {
        let (full, _) = synth::planted_dense(&[6, 5, 4, 4], 2, 0.0, 11);
        let opts = CompletionOptions {
            rank: 2,
            max_iters: 60,
            tolerance: 0.0,
            regularization: 1e-4,
            ntasks: 2,
            ..Default::default()
        };
        let out = tensor_complete(&full, &opts);
        assert!(out.rmse < 0.05, "rmse {}", out.rmse);
    }

    #[test]
    fn rmse_observed_matches_manual() {
        let model = KruskalModel {
            lambda: vec![1.0],
            factors: vec![Matrix::filled(2, 1, 1.0), Matrix::filled(2, 1, 1.0)],
        };
        // model value is 1 everywhere; entries 3 and 1 -> errors 2 and 0
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 0], 3.0), (vec![1, 1], 1.0)]);
        let expect = ((4.0 + 0.0) / 2.0_f64).sqrt();
        assert!((rmse_observed(&model, &t) - expect).abs() < 1e-12);
    }

    #[test]
    fn empty_tensor_is_handled() {
        let t = SparseTensor::new(vec![3, 3, 3]);
        let opts = CompletionOptions {
            rank: 2,
            max_iters: 2,
            ..Default::default()
        };
        let out = tensor_complete(&t, &opts);
        assert_eq!(out.rmse, 0.0);
    }
}
