//! Parallel sparse tensor decomposition over compressed sparse fibers.
//!
//! This crate is the Rust counterpart of **SPLATT**'s shared-memory CP-ALS
//! path (Smith & Karypis) and simultaneously of the **Chapel port** studied
//! by Rolinger, Simon & Krieger ("Parallel Sparse Tensor Decomposition in
//! Chapel", IPDPSW 2018). Both implementations in that paper — the C
//! reference and the Chapel port in its initial and optimized states — are
//! reproduced here as configurations of one code base:
//!
//! * [`Csf`] / [`CsfSet`] — the compressed-sparse-fiber tensor format and
//!   SPLATT's one/two/all-mode representation allocation policies.
//! * [`mttkrp`] — the matricized-tensor-times-Khatri-Rao-product kernels
//!   (root / internal / leaf), parameterized by the paper's
//!   matrix-row-access strategies ([`MatrixAccess`]) and mutex-pool lock
//!   strategies, with SPLATT's privatization-vs-locks heuristic.
//! * [`cp_als`] — the full CP-ALS driver (Algorithm 1 of the paper):
//!   MTTKRP, Gram matrices, normal-equation solves, column normalization,
//!   λ bookkeeping and fit computation, with the per-routine timers behind
//!   the paper's Table III.
//! * [`Implementation`] — presets bundling the knobs into the three
//!   configurations the paper measures (`Reference` ≙ C/OpenMP,
//!   `PortedInitial` ≙ unoptimized Chapel, `PortedOptimized` ≙ tuned
//!   Chapel).
//!
//! # Quick start
//!
//! ```
//! use splatt_core::{cp_als, CpalsOptions};
//! use splatt_tensor::synth;
//!
//! let (tensor, _truth) = synth::planted_dense(&[15, 12, 10], 4, 0.0, 42);
//! let opts = CpalsOptions { rank: 4, max_iters: 30, ..Default::default() };
//! let out = cp_als(&tensor, &opts);
//! assert!(out.fit > 0.95, "planted rank-4 tensor should be recovered");
//! ```

mod ccd;
mod checkpoint;
mod completion;
mod cpals;
pub mod csf;
mod diagnostics;
pub mod dispatch;
mod governed;
mod kruskal;
mod model_file;
mod options;
pub mod query;
pub mod refresh;
mod sgd;
mod tiling;

pub mod alto;
pub mod mttkrp;
pub mod reference;

pub use ccd::{tensor_complete_ccd, CcdOptions};
pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_HEADER};
pub use completion::{rmse_observed, tensor_complete, CompletionOptions, CompletionOutput};
pub use cpals::{
    cp_als, cp_als_with_team, try_cp_als, try_cp_als_guarded, try_cp_als_with_team,
    try_cp_als_with_team_guarded, CpalsError, CpalsOutput, RunAborted,
};
pub use csf::{Csf, CsfAlloc, CsfSet, KernelKind};
pub use diagnostics::corcondia;
pub use dispatch::{
    DispatchError, DispatchTable, FormatChoice, FormatPlan, ModeDecision, TensorFormat,
};
pub use governed::{
    try_cp_als_governed, try_cp_als_governed_with_team, GovernancePolicy, GovernedRun, OnOverrun,
};
pub use kruskal::KruskalModel;
pub use model_file::{
    load_model, load_model_path, model_from_checkpoint, save_model, save_model_path, MODEL_HEADER,
};
pub use mttkrp::{MatrixAccess, MttkrpConfig, MttkrpWorkspace};
pub use options::{Constraint, CpalsOptions, Implementation};
pub use query::{QueryArena, QueryError};
pub use refresh::{
    RefreshEngine, RefreshError, RefreshOptions, RefreshOutcome, REFRESH_MODEL_FILE,
};
pub use sgd::{tensor_complete_sgd, SgdOptions};
pub use tiling::TiledCsf;
