//! Compressed Sparse Fiber (CSF) storage (Smith & Karypis, IA³ 2015).
//!
//! CSF generalizes CSR to tensors: nonzeros sorted by a mode permutation
//! form a tree whose level-`l` nodes are the distinct index prefixes of
//! length `l + 1`. Each level stores the node ids (`fids`) and a pointer
//! array (`fptr`) into the next level; the leaves carry the values. SPLATT
//! can allocate one, two, or one-per-mode CSF representations of the same
//! tensor ([`CsfAlloc`]), trading memory for lock-free MTTKRP kernels —
//! the trade at the center of the paper's YELP-vs-NELL-2 behaviour.

use splatt_par::TaskTeam;
use splatt_tensor::{sort, SortVariant, SparseTensor};

/// How many CSF representations to allocate (SPLATT's `SPLATT_CSF_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsfAlloc {
    /// One representation rooted at the shortest mode. MTTKRPs for the
    /// other modes use the internal/leaf kernels (locks or privatization).
    One,
    /// Two representations: one rooted at the shortest mode, one at the
    /// longest. SPLATT's default — the middle mode still needs the
    /// internal kernel.
    #[default]
    Two,
    /// One representation per mode: every MTTKRP is a lock-free root-mode
    /// kernel, at `order` times the memory.
    All,
}

/// Which MTTKRP kernel a (CSF, mode) pairing requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Output mode is the CSF root: slice-parallel, no synchronization.
    Root,
    /// Output mode is an interior level (depth carried).
    Internal(usize),
    /// Output mode is the leaf level.
    Leaf,
}

/// One CSF representation of a sparse tensor, stored as flat slabs.
///
/// All levels share two contiguous arrays (`fptr`, `fids`) addressed
/// through level-offset tables, instead of one heap `Vec` per level: the
/// tree walk in the MTTKRP then streams through two slabs with no pointer
/// chasing between levels, and construction sizes both slabs exactly with
/// a two-pass count-then-fill build (no `push` growth in the hot path) —
/// the linearized-storage layout ALTO and SPLATT's own CSF use.
#[derive(Debug, Clone)]
pub struct Csf {
    /// `dim_perm[level]` = original mode stored at that tree level.
    dim_perm: Vec<usize>,
    /// Original mode dimensions (unpermuted).
    dims: Vec<usize>,
    /// Flat child-pointer slab for levels `0..order-1`, concatenated.
    /// Level `l` occupies `fptr[fptr_off[l]..fptr_off[l+1]]` and holds
    /// `nfibers(l) + 1` entries; `fptr(l)[f]..fptr(l)[f+1]` are the
    /// children of fiber `f` (indices into level `l+1`, or into `vals`
    /// for `l = order - 2`).
    fptr: Vec<usize>,
    /// Level offsets into `fptr` (`order` entries: `order - 1` levels
    /// plus the terminating end offset).
    fptr_off: Vec<usize>,
    /// Flat fiber-id slab for levels `0..order`, concatenated. Level `l`
    /// occupies `fids[fids_off[l]..fids_off[l+1]]`; each entry is the
    /// original index (in mode `dim_perm[l]`) of that fiber.
    fids: Vec<u32>,
    /// Level offsets into `fids` (`order + 1` entries).
    fids_off: Vec<usize>,
    /// Nonzero values, in sorted order.
    vals: Vec<f64>,
    /// Nonzeros under each root slice — the weights for task partitioning.
    slice_nnz: Vec<usize>,
}

/// The tree level at which nonzero `x` opens a new fiber: the first level
/// whose index (or any shallower one) differs from nonzero `x - 1`.
/// Nonzero 0 opens every level, and the leaf level opens for *every*
/// nonzero — duplicate coordinates each keep their own leaf.
#[inline]
fn open_level(streams: &[&[u32]], x: usize, nlevels: usize) -> usize {
    if x == 0 {
        return 0;
    }
    let changed = streams
        .iter()
        .position(|s| s[x] != s[x - 1])
        .unwrap_or(nlevels);
    changed.min(nlevels - 1)
}

impl Csf {
    /// Build a CSF from `tensor`, rooted at mode `dim_perm[0]` with tree
    /// levels following `dim_perm`. The tensor is copied and sorted with
    /// `variant` on `team` (the paper's "Sort" routine runs here).
    ///
    /// # Panics
    /// Panics if `dim_perm` is not a permutation of the tensor's modes.
    pub fn build(
        tensor: &SparseTensor,
        dim_perm: &[usize],
        team: &TaskTeam,
        variant: SortVariant,
    ) -> Self {
        let mut sorted = tensor.clone();
        sort::sort_by_perm(&mut sorted, dim_perm, team, variant);
        Self::from_sorted(&sorted, dim_perm)
    }

    /// [`Csf::build`] under run governance: the sort polls `guard`
    /// between buckets. A cancelled build returns a structurally valid
    /// but unusable CSF; the caller's next guard check aborts before it
    /// is consumed.
    pub fn build_guarded(
        tensor: &SparseTensor,
        dim_perm: &[usize],
        team: &TaskTeam,
        variant: SortVariant,
        guard: Option<&splatt_guard::RunGuard>,
    ) -> Self {
        let mut sorted = tensor.clone();
        sort::sort_by_perm_guarded(&mut sorted, dim_perm, team, variant, guard);
        // A cancelled sort may leave the buffer partially ordered; fall
        // back to a canonical sort only when the data is actually usable
        // (i.e. not cancelled), otherwise skip the (now pointless) walk.
        if guard.is_some_and(|g| g.is_cancelled()) && !sorted.is_sorted_by(dim_perm) {
            // Produce an empty-but-valid CSF; the run is aborting.
            let empty = SparseTensor::new(tensor.dims().to_vec());
            return Self::from_sorted(&empty, dim_perm);
        }
        Self::from_sorted(&sorted, dim_perm)
    }

    /// Build from a tensor already sorted by `dim_perm`.
    ///
    /// Two-pass construction: pass 1 counts the fibers each level will
    /// hold, both slabs are then sized exactly, and pass 2 fills them
    /// through per-level write cursors — no reallocation, no per-level
    /// heap vectors.
    pub(crate) fn from_sorted(sorted: &SparseTensor, dim_perm: &[usize]) -> Self {
        debug_assert!(sorted.is_sorted_by(dim_perm), "tensor must be pre-sorted");
        let order = sorted.order();
        let nnz = sorted.nnz();
        let nlevels = order;
        let vals = sorted.vals().to_vec();

        // index streams in level order
        let streams: Vec<&[u32]> = dim_perm.iter().map(|&m| sorted.ind(m)).collect();

        // Pass 1: count the fibers opened at each level.
        let mut nfib = vec![0usize; nlevels];
        for x in 0..nnz {
            for count in nfib[open_level(&streams, x, nlevels)..].iter_mut() {
                *count += 1;
            }
        }

        // Size the slabs exactly: every `fptr` level carries one closing
        // entry beyond its fiber count.
        let mut fids_off = Vec::with_capacity(nlevels + 1);
        fids_off.push(0);
        for &n in &nfib {
            fids_off.push(fids_off.last().unwrap() + n);
        }
        let mut fptr_off = Vec::with_capacity(nlevels);
        fptr_off.push(0);
        for &n in &nfib[..nlevels - 1] {
            fptr_off.push(fptr_off.last().unwrap() + n + 1);
        }
        let mut fids = vec![0u32; *fids_off.last().unwrap()];
        let mut fptr = vec![0usize; *fptr_off.last().unwrap()];

        // Pass 2: fill through per-level cursors. When fiber `f` opens at
        // level `l`, its child pointer is the count of level-`l+1` fibers
        // opened so far (for the deepest interior level that count equals
        // `x`, the leaves consumed — every nonzero is its own leaf).
        let mut cursor = vec![0usize; nlevels];
        for x in 0..nnz {
            for l in open_level(&streams, x, nlevels)..nlevels {
                if l < nlevels - 1 {
                    fptr[fptr_off[l] + cursor[l]] = cursor[l + 1];
                }
                fids[fids_off[l] + cursor[l]] = streams[l][x];
                cursor[l] += 1;
            }
        }
        // close every pointer array
        for l in 0..nlevels - 1 {
            fptr[fptr_off[l] + cursor[l]] = cursor[l + 1];
        }

        // Per-slice nonzero counts for weighted partitioning. Subtrees
        // are contiguous at every level, so slice `s` owns the leaf range
        // between the first-child chains of slices `s` and `s + 1`.
        let leaf_start = |s: usize| -> usize {
            let mut f = s;
            for l in 0..nlevels - 1 {
                f = fptr[fptr_off[l] + f];
            }
            f
        };
        let nslices = nfib[0];
        let mut slice_nnz = Vec::with_capacity(nslices);
        let mut prev = leaf_start(0);
        for s in 1..=nslices {
            let next = leaf_start(s);
            slice_nnz.push(next - prev);
            prev = next;
        }

        Csf {
            dim_perm: dim_perm.to_vec(),
            dims: sorted.dims().to_vec(),
            fptr,
            fptr_off,
            fids,
            fids_off,
            vals,
            slice_nnz,
        }
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Original mode dimensions.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Mode permutation: `dim_perm()[l]` is the original mode at level `l`.
    #[inline]
    pub fn dim_perm(&self) -> &[usize] {
        &self.dim_perm
    }

    /// The tree level holding original mode `m`.
    pub fn level_of_mode(&self, m: usize) -> usize {
        self.dim_perm
            .iter()
            .position(|&p| p == m)
            .expect("mode not present in this CSF")
    }

    /// Number of fibers at `level`.
    #[inline]
    pub fn nfibers(&self, level: usize) -> usize {
        self.fids_off[level + 1] - self.fids_off[level]
    }

    /// Fiber ids at `level`.
    #[inline]
    pub fn fids(&self, level: usize) -> &[u32] {
        &self.fids[self.fids_off[level]..self.fids_off[level + 1]]
    }

    /// Child-pointer array of `level` (`nfibers(level) + 1` entries);
    /// `fptr(l)[f]..fptr(l)[f+1]` are fiber `f`'s children. Kernels hoist
    /// this slice out of their fiber loops so the inner walk indexes one
    /// contiguous slab.
    #[inline]
    pub fn fptr(&self, level: usize) -> &[usize] {
        &self.fptr[self.fptr_off[level]..self.fptr_off[level + 1]]
    }

    /// Child range of fiber `f` at `level` (children live at `level + 1`,
    /// or in [`Csf::vals`] when `level == order - 2`).
    #[inline]
    pub fn children(&self, level: usize, f: usize) -> std::ops::Range<usize> {
        let base = self.fptr_off[level];
        self.fptr[base + f]..self.fptr[base + f + 1]
    }

    /// Nonzero values in tree order.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Nonzeros under each root slice.
    #[inline]
    pub fn slice_nnz(&self) -> &[usize] {
        &self.slice_nnz
    }

    /// Bytes held by this representation: the flat `fptr`/`fids` slabs,
    /// both level-offset tables, the values, and the per-slice nonzero
    /// weights. This is the figure a `--mem-budget` decision trips on, so
    /// every owned array is counted at its true element width.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.fptr.len() * size_of::<usize>()
            + self.fptr_off.len() * size_of::<usize>()
            + self.fids.len() * size_of::<u32>()
            + self.fids_off.len() * size_of::<usize>()
            + self.vals.len() * size_of::<f64>()
            + self.slice_nnz.len() * size_of::<usize>()
    }

    /// Rebuild the coordinate tensor (for round-trip tests).
    pub fn to_coo(&self) -> SparseTensor {
        let order = self.order();
        let nnz = self.nnz();
        let mut inds: Vec<Vec<u32>> = vec![vec![0; nnz]; order];
        // walk the tree, filling index streams in level order
        fn walk(
            csf: &Csf,
            level: usize,
            fiber: usize,
            prefix: &mut Vec<u32>,
            inds: &mut [Vec<u32>],
        ) {
            prefix.push(csf.fids(level)[fiber]);
            if level == csf.order() - 2 {
                for x in csf.children(level, fiber) {
                    for (l, &id) in prefix.iter().enumerate() {
                        inds[csf.dim_perm[l]][x] = id;
                    }
                    inds[csf.dim_perm[csf.order() - 1]][x] = csf.fids(csf.order() - 1)[x];
                }
            } else {
                for c in csf.children(level, fiber) {
                    walk(csf, level + 1, c, prefix, inds);
                }
            }
            prefix.pop();
        }
        let mut prefix = Vec::with_capacity(order);
        for s in 0..self.nfibers(0) {
            walk(self, 0, s, &mut prefix, &mut inds);
        }
        SparseTensor::from_parts(self.dims.clone(), inds, self.vals.clone())
    }
}

/// Independent reference construction for validating the flat-slab build.
///
/// This is the pre-refactor push-per-nonzero nested-`Vec` algorithm kept
/// verbatim as a structural oracle: property and regression tests build a
/// [`NestedCsf`] alongside a [`Csf`] from the same sorted tensor and
/// assert level-by-level equality. Hidden from docs — it exists only so
/// integration tests outside this crate can reach the oracle.
#[doc(hidden)]
pub mod nested {
    use super::open_level;
    use splatt_par::TaskTeam;
    use splatt_tensor::{sort, SortVariant, SparseTensor};

    /// The original per-level `Vec<Vec>` CSF layout.
    pub struct NestedCsf {
        pub fptr: Vec<Vec<usize>>,
        pub fids: Vec<Vec<u32>>,
        pub vals: Vec<f64>,
        pub slice_nnz: Vec<usize>,
    }

    /// Mirror of [`super::Csf::build`] using the nested construction.
    pub fn build(
        tensor: &SparseTensor,
        dim_perm: &[usize],
        team: &TaskTeam,
        variant: SortVariant,
    ) -> NestedCsf {
        let mut sorted = tensor.clone();
        sort::sort_by_perm(&mut sorted, dim_perm, team, variant);
        from_sorted(&sorted, dim_perm)
    }

    /// The pre-refactor single-pass push-growth build.
    pub fn from_sorted(sorted: &SparseTensor, dim_perm: &[usize]) -> NestedCsf {
        let nlevels = sorted.order();
        let nnz = sorted.nnz();
        let mut fptr: Vec<Vec<usize>> = vec![Vec::new(); nlevels - 1];
        let mut fids: Vec<Vec<u32>> = vec![Vec::new(); nlevels];
        let streams: Vec<&[u32]> = dim_perm.iter().map(|&m| sorted.ind(m)).collect();
        for x in 0..nnz {
            for l in open_level(&streams, x, nlevels)..nlevels {
                if l < nlevels - 1 {
                    let child_count = if l + 1 < nlevels - 1 {
                        fids[l + 1].len()
                    } else {
                        x // leaves opened so far == nonzeros consumed
                    };
                    fptr[l].push(child_count);
                }
                fids[l].push(streams[l][x]);
            }
        }
        for l in 0..nlevels - 1 {
            let end = if l + 1 < nlevels - 1 {
                fids[l + 1].len()
            } else {
                nnz
            };
            fptr[l].push(end);
        }
        let nslices = fids[0].len();
        let slice_nnz = (0..nslices)
            .map(|s| subtree_nnz(&fptr, s, 0, nlevels))
            .collect();
        NestedCsf {
            fptr,
            fids,
            vals: sorted.vals().to_vec(),
            slice_nnz,
        }
    }

    fn subtree_nnz(fptr: &[Vec<usize>], fiber: usize, level: usize, nlevels: usize) -> usize {
        if level == nlevels - 2 {
            fptr[level][fiber + 1] - fptr[level][fiber]
        } else {
            (fptr[level][fiber]..fptr[level][fiber + 1])
                .map(|c| subtree_nnz(fptr, c, level + 1, nlevels))
                .sum()
        }
    }

    /// Assert a flat-slab [`super::Csf`] is structurally identical to the
    /// nested oracle, level by level.
    ///
    /// # Panics
    /// Panics (with the diverging level named) on any mismatch.
    pub fn assert_equivalent(flat: &super::Csf, oracle: &NestedCsf) {
        let nlevels = flat.order();
        for l in 0..nlevels {
            assert_eq!(
                flat.fids(l),
                oracle.fids[l].as_slice(),
                "fids diverge at level {l}"
            );
        }
        for l in 0..nlevels - 1 {
            assert_eq!(
                flat.fptr(l),
                oracle.fptr[l].as_slice(),
                "fptr diverge at level {l}"
            );
        }
        assert_eq!(flat.vals(), oracle.vals.as_slice(), "values diverge");
        assert_eq!(
            flat.slice_nnz(),
            oracle.slice_nnz.as_slice(),
            "slice_nnz diverge"
        );
    }
}

/// A set of CSF representations plus the policy that chose them.
#[derive(Debug, Clone)]
pub struct CsfSet {
    csfs: Vec<Csf>,
    alloc: CsfAlloc,
}

/// Mode permutation rooted at `root` with the remaining modes ordered by
/// ascending dimension (SPLATT sorts shorter modes toward the root to
/// shrink upper tree levels).
fn perm_rooted_at(dims: &[usize], root: usize) -> Vec<usize> {
    let mut rest: Vec<usize> = (0..dims.len()).filter(|&m| m != root).collect();
    rest.sort_by_key(|&m| (dims[m], m));
    let mut perm = Vec::with_capacity(dims.len());
    perm.push(root);
    perm.extend(rest);
    perm
}

impl CsfSet {
    /// Build the representations dictated by `alloc`, attributing the
    /// sorting phase (and only it) to the `Sort` timer — the paper's
    /// "Sort" column times the nonzero sort, not CSF assembly.
    pub fn build_timed(
        tensor: &SparseTensor,
        alloc: CsfAlloc,
        team: &TaskTeam,
        variant: SortVariant,
        timers: &splatt_par::TimerRegistry,
    ) -> Self {
        Self::build_timed_guarded(tensor, alloc, team, variant, timers, None)
    }

    /// [`CsfSet::build_timed`] under run governance: the sorting phase
    /// polls `guard` so a cancelled run stops building representations
    /// early instead of finishing a multi-second preprocessing pass.
    pub fn build_timed_guarded(
        tensor: &SparseTensor,
        alloc: CsfAlloc,
        team: &TaskTeam,
        variant: SortVariant,
        timers: &splatt_par::TimerRegistry,
        guard: Option<&splatt_guard::RunGuard>,
    ) -> Self {
        let dims = tensor.dims();
        let roots = Self::roots_for(dims, alloc);
        let csfs = roots
            .iter()
            .map(|&r| {
                let perm = perm_rooted_at(dims, r);
                let mut sorted = tensor.clone();
                timers.time(splatt_par::Routine::Sort, || {
                    sort::sort_by_perm_guarded(&mut sorted, &perm, team, variant, guard);
                });
                if guard.is_some_and(|g| g.is_cancelled()) && !sorted.is_sorted_by(&perm) {
                    let empty = SparseTensor::new(dims.to_vec());
                    Csf::from_sorted(&empty, &perm)
                } else {
                    Csf::from_sorted(&sorted, &perm)
                }
            })
            .collect();
        CsfSet { csfs, alloc }
    }

    /// The root modes `alloc` dictates for a tensor with these dims.
    fn roots_for(dims: &[usize], alloc: CsfAlloc) -> Vec<usize> {
        let order = dims.len();
        let by_dim = |m: &usize| (dims[*m], *m);
        let shortest = (0..order).min_by_key(by_dim).unwrap();
        let longest = (0..order).max_by_key(by_dim).unwrap();
        match alloc {
            CsfAlloc::One => vec![shortest],
            CsfAlloc::Two => {
                if shortest == longest {
                    vec![shortest]
                } else {
                    vec![shortest, longest]
                }
            }
            CsfAlloc::All => (0..order).collect(),
        }
    }

    /// Build the representations dictated by `alloc`.
    pub fn build(
        tensor: &SparseTensor,
        alloc: CsfAlloc,
        team: &TaskTeam,
        variant: SortVariant,
    ) -> Self {
        let dims = tensor.dims();
        let csfs = Self::roots_for(dims, alloc)
            .iter()
            .map(|&r| Csf::build(tensor, &perm_rooted_at(dims, r), team, variant))
            .collect();
        CsfSet { csfs, alloc }
    }

    /// The allocation policy used.
    pub fn alloc(&self) -> CsfAlloc {
        self.alloc
    }

    /// All representations.
    pub fn csfs(&self) -> &[Csf] {
        &self.csfs
    }

    /// Pick the representation and kernel for an MTTKRP on `mode`
    /// (SPLATT's `csf_mode_to_use`): a root pairing if one exists, else a
    /// leaf pairing, else the internal kernel on the first representation.
    pub fn for_mode(&self, mode: usize) -> (&Csf, KernelKind) {
        if let Some(c) = self.csfs.iter().find(|c| c.dim_perm()[0] == mode) {
            return (c, KernelKind::Root);
        }
        if let Some(c) = self
            .csfs
            .iter()
            .find(|c| *c.dim_perm().last().unwrap() == mode)
        {
            return (c, KernelKind::Leaf);
        }
        let c = &self.csfs[0];
        let depth = c.level_of_mode(mode);
        (c, KernelKind::Internal(depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    fn team() -> TaskTeam {
        TaskTeam::new(2)
    }

    fn tiny() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![2, 3, 4], 4.0),
                (vec![2, 3, 1], 5.0),
            ],
        )
    }

    #[test]
    fn tiny_structure_is_correct() {
        let csf = Csf::build(&tiny(), &[0, 1, 2], &team(), SortVariant::AllOpts);
        // slices present: 0 and 2
        assert_eq!(csf.nfibers(0), 2);
        assert_eq!(csf.fids(0), &[0, 2]);
        // fibers: (0,0), (0,1), (2,3)
        assert_eq!(csf.nfibers(1), 3);
        assert_eq!(csf.fids(1), &[0, 1, 3]);
        // slice 0 has fibers 0..2, slice 2 has fiber 2..3
        assert_eq!(csf.children(0, 0), 0..2);
        assert_eq!(csf.children(0, 1), 2..3);
        // fiber (0,0) has leaves 0..2 with ids 0,2
        assert_eq!(csf.children(1, 0), 0..2);
        assert_eq!(&csf.fids(2)[0..2], &[0, 2]);
        // values sorted: (0,0,0)=1, (0,0,2)=2, (0,1,0)=3, (2,3,1)=5, (2,3,4)=4
        assert_eq!(csf.vals(), &[1.0, 2.0, 3.0, 5.0, 4.0]);
        assert_eq!(csf.slice_nnz(), &[3, 2]);
    }

    #[test]
    fn coo_roundtrip_random() {
        let t = synth::power_law(&[20, 30, 25], 3_000, 1.8, 5);
        for root in 0..3 {
            let perm = perm_rooted_at(t.dims(), root);
            let csf = Csf::build(&t, &perm, &team(), SortVariant::AllOpts);
            assert_eq!(csf.nnz(), t.nnz());
            let back = csf.to_coo();
            assert_eq!(back.canonical_entries(), t.canonical_entries());
        }
    }

    #[test]
    fn coo_roundtrip_four_modes() {
        let t = synth::random_uniform(&[8, 6, 10, 7], 1_500, 9);
        let csf = Csf::build(
            &t,
            &perm_rooted_at(t.dims(), 2),
            &team(),
            SortVariant::AllOpts,
        );
        assert_eq!(csf.order(), 4);
        assert_eq!(csf.to_coo().canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn slice_nnz_sums_to_total() {
        let t = synth::power_law(&[15, 10, 12], 800, 2.0, 3);
        let csf = Csf::build(&t, &[1, 0, 2], &team(), SortVariant::AllOpts);
        assert_eq!(csf.slice_nnz().iter().sum::<usize>(), t.nnz());
    }

    #[test]
    fn single_nonzero_tensor() {
        let t = SparseTensor::from_entries(vec![5, 5, 5], &[(vec![3, 1, 4], 2.5)]);
        let csf = Csf::build(&t, &[0, 1, 2], &team(), SortVariant::AllOpts);
        assert_eq!(csf.nfibers(0), 1);
        assert_eq!(csf.nfibers(1), 1);
        assert_eq!(csf.vals(), &[2.5]);
        assert_eq!(csf.to_coo().canonical_entries(), t.canonical_entries());
    }

    #[test]
    fn empty_tensor_builds_empty_csf() {
        let t = SparseTensor::new(vec![4, 4, 4]);
        let csf = Csf::build(&t, &[0, 1, 2], &team(), SortVariant::AllOpts);
        assert_eq!(csf.nnz(), 0);
        assert_eq!(csf.nfibers(0), 0);
    }

    #[test]
    fn level_of_mode_inverts_perm() {
        let t = tiny();
        let csf = Csf::build(&t, &[2, 0, 1], &team(), SortVariant::AllOpts);
        assert_eq!(csf.level_of_mode(2), 0);
        assert_eq!(csf.level_of_mode(0), 1);
        assert_eq!(csf.level_of_mode(1), 2);
    }

    #[test]
    fn perm_rooted_orders_rest_by_dim() {
        assert_eq!(perm_rooted_at(&[40, 10, 70], 2), vec![2, 1, 0]);
        assert_eq!(perm_rooted_at(&[40, 10, 70], 1), vec![1, 0, 2]);
    }

    #[test]
    fn alloc_one_uses_shortest_root() {
        let t = synth::random_uniform(&[40, 10, 70], 500, 1);
        let set = CsfSet::build(&t, CsfAlloc::One, &team(), SortVariant::AllOpts);
        assert_eq!(set.csfs().len(), 1);
        assert_eq!(set.csfs()[0].dim_perm()[0], 1); // dim 10 is shortest
    }

    #[test]
    fn alloc_two_roots_shortest_and_longest() {
        let t = synth::random_uniform(&[40, 10, 70], 500, 1);
        let set = CsfSet::build(&t, CsfAlloc::Two, &team(), SortVariant::AllOpts);
        assert_eq!(set.csfs().len(), 2);
        assert_eq!(set.csfs()[0].dim_perm()[0], 1);
        assert_eq!(set.csfs()[1].dim_perm()[0], 2); // dim 70 is longest
    }

    #[test]
    fn alloc_all_gives_root_kernel_for_every_mode() {
        let t = synth::random_uniform(&[20, 10, 30], 500, 1);
        let set = CsfSet::build(&t, CsfAlloc::All, &team(), SortVariant::AllOpts);
        assert_eq!(set.csfs().len(), 3);
        for mode in 0..3 {
            let (_, kind) = set.for_mode(mode);
            assert_eq!(kind, KernelKind::Root, "mode {mode}");
        }
    }

    #[test]
    fn alloc_two_kernel_selection() {
        // dims: mode1 shortest (root of csf0), mode2 longest (root of csf1),
        // mode0 middle -> leaf of csf0? csf0 perm = [1, 0, 2] so mode0 is
        // internal level 1, mode2 is leaf of csf0 but root of csf1.
        let t = synth::random_uniform(&[40, 10, 70], 500, 1);
        let set = CsfSet::build(&t, CsfAlloc::Two, &team(), SortVariant::AllOpts);
        assert_eq!(set.for_mode(1).1, KernelKind::Root);
        assert_eq!(set.for_mode(2).1, KernelKind::Root);
        // mode 0: not a root; csf0 perm [1,0,2] has leaf=2, csf1 perm
        // [2,1,0] has leaf=0 -> leaf kernel on csf1
        let (csf, kind) = set.for_mode(0);
        assert_eq!(kind, KernelKind::Leaf);
        assert_eq!(csf.dim_perm(), &[2, 1, 0]);
    }

    #[test]
    fn alloc_one_kernel_selection_internal() {
        let t = synth::random_uniform(&[40, 10, 70], 500, 1);
        let set = CsfSet::build(&t, CsfAlloc::One, &team(), SortVariant::AllOpts);
        // csf perm [1, 0, 2]: mode 0 internal at depth 1, mode 2 leaf
        assert_eq!(set.for_mode(0).1, KernelKind::Internal(1));
        assert_eq!(set.for_mode(2).1, KernelKind::Leaf);
    }

    #[test]
    fn storage_bytes_is_positive_and_sane() {
        let t = synth::random_uniform(&[20, 20, 20], 1_000, 2);
        let csf = Csf::build(&t, &[0, 1, 2], &team(), SortVariant::AllOpts);
        let bytes = csf.storage_bytes();
        assert!(bytes >= t.nnz() * 8, "must at least hold the values");
        assert!(bytes < t.nnz() * 50, "index overhead looks wrong: {bytes}");
    }

    #[test]
    fn storage_bytes_matches_slab_footprint() {
        use std::mem::size_of;
        let t = synth::power_law(&[30, 22, 26], 2_000, 1.7, 8);
        for root in 0..3 {
            let csf = Csf::build(
                &t,
                &perm_rooted_at(t.dims(), root),
                &team(),
                SortVariant::AllOpts,
            );
            let order = csf.order();
            // recompute every owned array's length through the public API
            let fids_len: usize = (0..order).map(|l| csf.fids(l).len()).sum();
            let fptr_len: usize = (0..order - 1).map(|l| csf.fptr(l).len()).sum();
            let expect = fptr_len * size_of::<usize>()
                + order * size_of::<usize>()               // fptr_off
                + fids_len * size_of::<u32>()
                + (order + 1) * size_of::<usize>()         // fids_off
                + csf.nnz() * size_of::<f64>()
                + std::mem::size_of_val(csf.slice_nnz());
            assert_eq!(csf.storage_bytes(), expect, "root {root}");
        }
    }

    #[test]
    fn flat_build_matches_nested_oracle() {
        for (order_dims, nnz, seed) in [
            (vec![20, 30, 25], 3_000, 5u64),
            (vec![8, 6, 10, 7], 1_500, 9),
            (vec![4, 5, 3, 6, 4], 900, 13),
        ] {
            let t = synth::random_uniform(&order_dims, nnz, seed);
            for root in 0..t.order() {
                let perm = perm_rooted_at(t.dims(), root);
                let flat = Csf::build(&t, &perm, &team(), SortVariant::AllOpts);
                let oracle = nested::build(&t, &perm, &team(), SortVariant::AllOpts);
                nested::assert_equivalent(&flat, &oracle);
            }
        }
    }

    #[test]
    fn duplicate_coordinates_each_keep_their_leaf() {
        // every nonzero must be its own leaf, even exact repeats — the
        // two-pass rebuild has to preserve the pre-refactor invariant
        let t = SparseTensor::from_entries(
            vec![4, 4, 4],
            &[
                (vec![1, 2, 3], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![1, 2, 3], 5.0),
                (vec![0, 1, 2], 1.0),
                (vec![0, 1, 2], 7.0),
            ],
        );
        let csf = Csf::build(&t, &[0, 1, 2], &team(), SortVariant::AllOpts);
        assert_eq!(csf.nnz(), 5, "duplicates collapsed");
        assert_eq!(csf.nfibers(2), 5, "each duplicate keeps its own leaf");
        assert_eq!(csf.nfibers(0), 2);
        assert_eq!(csf.nfibers(1), 2);
        assert_eq!(csf.slice_nnz(), &[2, 3]);
        let oracle = nested::build(&t, &[0, 1, 2], &team(), SortVariant::AllOpts);
        nested::assert_equivalent(&csf, &oracle);
        // the COO round trip preserves every duplicate
        assert_eq!(csf.to_coo().canonical_entries(), t.canonical_entries());
    }
}
