//! Std-only runtime substrate for the splatt workspace.
//!
//! The workspace builds in hermetic environments with no access to
//! crates.io, so everything that used to come from small utility crates
//! lives here instead:
//!
//! - [`sync`] — a `parking_lot`-flavoured [`sync::Mutex`] / [`sync::Condvar`]
//!   pair (guards without poisoning, `force_unlock` for guard-free critical
//!   sections) plus [`sync::CachePadded`] for false-sharing avoidance.
//! - [`rng`] — a small, fast, seedable PRNG ([`rng::StdRng`],
//!   xoshiro256** seeded through SplitMix64) with the `random` /
//!   `random_range` surface the generators and examples use.
//! - [`par`] — scoped fork-join helpers over index ranges and slices for
//!   the few data-parallel loops outside the `TaskTeam` world.
//! - [`qc`] — a deterministic mini property-testing harness (seeded cases,
//!   failing-seed reporting) used by the workspace test suites.

pub mod par;
pub mod qc;
pub mod rng;
pub mod sync;
