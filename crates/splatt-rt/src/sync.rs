//! Mutex / condvar / cache-padding primitives.
//!
//! The mutex follows the `parking_lot` shape rather than `std`'s: no
//! poisoning, `try_lock` returns an `Option`, `get_mut` gives direct access
//! through `&mut self`, and `force_unlock` releases a lock whose guard was
//! deliberately forgotten (used by the adaptive OS-lock strategy). The
//! implementation is a test-and-set fast path with a brief spin, falling
//! back to a std mutex/condvar parking lot shared by all waiters.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Spin iterations before a contended `lock()` parks on the OS.
const SPIN_LIMIT: u32 = 100;

struct RawMutex {
    locked: AtomicBool,
    waiters: AtomicUsize,
    park: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
}

impl RawMutex {
    const fn new() -> Self {
        RawMutex {
            locked: AtomicBool::new(false),
            waiters: AtomicUsize::new(0),
            park: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        !self.locked.swap(true, Ordering::Acquire)
    }

    fn lock(&self) {
        for _ in 0..SPIN_LIMIT {
            if self.try_lock() {
                return;
            }
            std::hint::spin_loop();
        }
        self.lock_slow();
    }

    #[cold]
    fn lock_slow(&self) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        {
            let mut guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            while !self.try_lock() {
                guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    #[inline]
    fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.park.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_one();
        }
    }
}

/// A `parking_lot`-style mutex: no poisoning, guard-based unlock, plus
/// `force_unlock` for callers that `mem::forget` the guard.
pub struct Mutex<T: ?Sized> {
    raw: RawMutex,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            raw: RawMutex::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.raw.lock();
        MutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(MutexGuard {
                lock: self,
                _not_send: PhantomData,
            })
        } else {
            None
        }
    }

    /// Direct access through an exclusive reference — no locking needed.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.data.get() }
    }

    /// Release a lock whose guard was forgotten.
    ///
    /// # Safety
    /// The mutex must be held, and no guard for it may still be live.
    pub unsafe fn force_unlock(&self) {
        self.raw.unlock();
    }

    #[inline]
    pub fn is_locked(&self) -> bool {
        self.raw.locked.load(Ordering::Relaxed)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    _not_send: PhantomData<*const ()>,
}

unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.raw.unlock();
    }
}

/// A condition variable usable with [`Mutex`], in the `parking_lot` style:
/// `wait` takes `&mut MutexGuard` and reacquires before returning.
///
/// Spurious wakeups are possible (all callers loop on their predicate).
pub struct Condvar {
    generation: std::sync::Mutex<u64>,
    cv: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            generation: std::sync::Mutex::new(0),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a notification,
    /// then reacquire the mutex.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let mutex = guard.lock;
        let start = *self.generation.lock().unwrap_or_else(|e| e.into_inner());
        mutex.raw.unlock();
        {
            let mut gen = self.generation.lock().unwrap_or_else(|e| e.into_inner());
            // One bounded wait: a notify between our unlock and this point
            // bumped the generation, so we never sleep through it.
            if *gen == start {
                gen = self.cv.wait(gen).unwrap_or_else(|e| e.into_inner());
                drop(gen);
            }
        }
        mutex.raw.lock();
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns
    /// `true` if the wait timed out (the mutex is reacquired either way).
    ///
    /// Spurious wakeups are possible, and a `false` return does not
    /// guarantee the predicate holds — callers loop, exactly as with
    /// [`Condvar::wait`].
    pub fn wait_timeout<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let mutex = guard.lock;
        let start = *self.generation.lock().unwrap_or_else(|e| e.into_inner());
        mutex.raw.unlock();
        let timed_out = {
            let gen = self.generation.lock().unwrap_or_else(|e| e.into_inner());
            if *gen == start {
                let (gen, result) = self
                    .cv
                    .wait_timeout(gen, timeout)
                    .unwrap_or_else(|e| e.into_inner());
                drop(gen);
                result.timed_out()
            } else {
                false
            }
        };
        mutex.raw.lock();
        timed_out
    }

    pub fn notify_one(&self) {
        let mut gen = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        *gen = gen.wrapping_add(1);
        self.cv.notify_one();
    }

    pub fn notify_all(&self) {
        let mut gen = self.generation.lock().unwrap_or_else(|e| e.into_inner());
        *gen = gen.wrapping_add(1);
        self.cv.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Pads and aligns a value to (at least) a cache-line boundary so adjacent
/// per-thread slots never share a line. 128 bytes covers the common
/// prefetch-pair granularity on x86 and the 128-byte lines on newer ARM.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        let mut m = m;
        *m.get_mut() = 42;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_contended_counts() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 80_000);
    }

    #[test]
    fn force_unlock_roundtrip() {
        let m = Mutex::new(());
        std::mem::forget(m.lock());
        assert!(m.is_locked());
        unsafe { m.force_unlock() };
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_expires_and_delivers() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));

        // Un-notified wait times out and reacquires the mutex.
        {
            let (m, cv) = &*pair;
            let mut done = m.lock();
            let timed_out = cv.wait_timeout(&mut done, std::time::Duration::from_millis(10));
            assert!(timed_out);
            assert!(!*done);
        }

        // A notification arriving within the window is delivered.
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_timeout(&mut done, std::time::Duration::from_millis(50));
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn cache_padded_alignment() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let slots: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        assert_eq!(*slots[3], 3);
    }
}
