//! A deterministic mini property-testing harness.
//!
//! Runs a property over `cases` RNG-seeded inputs. Seeds are derived from
//! a fixed base (overridable via `SPLATT_QC_SEED`), so failures are
//! reproducible: the panic message names the exact case seed, and setting
//! `SPLATT_QC_SEED=<seed>` with `SPLATT_QC_CASES=1` replays just that case.
//!
//! ```
//! use splatt_rt::qc::{self, Gen};
//!
//! qc::check("addition commutes", 64, |g| {
//!     let a = g.usize_in(0..1000);
//!     let b = g.usize_in(0..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::{RngExt, SampleRange, SeedableRng, StdRng};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Per-case input source handed to properties.
pub struct Gen {
    rng: StdRng,
    seed: u64,
}

impl Gen {
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed for this case — embed in assertion messages if helpful.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.random()
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    pub fn bool(&mut self) -> bool {
        self.rng.random()
    }

    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.range(range)
    }

    pub fn range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        self.rng.random_range(range)
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "qc::Gen::choose on empty slice");
        &items[self.usize_in(0..items.len())]
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            p.swap(i, self.usize_in(0..i + 1));
        }
        p
    }

    /// `len` f64s uniform in `[lo, hi)`.
    pub fn f64_vec(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Base seed: fixed for determinism unless overridden via `SPLATT_QC_SEED`.
fn base_seed() -> u64 {
    env_u64("SPLATT_QC_SEED").unwrap_or(0x5EED_CAFE_F00D_0001)
}

fn case_count(default_cases: u32) -> u32 {
    env_u64("SPLATT_QC_CASES")
        .map(|n| n as u32)
        .unwrap_or(default_cases)
        .max(1)
}

/// Run `property` over `cases` seeded inputs. Panics (with the case seed in
/// the message) on the first failing case.
pub fn check<F>(name: &str, cases: u32, property: F)
where
    F: Fn(&mut Gen),
{
    let base = base_seed();
    let cases = case_count(cases);
    for case in 0..cases {
        // SplitMix-style derivation keeps case seeds well separated.
        let seed = base
            .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            | 1;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut gen = Gen::from_seed(seed);
            property(&mut gen);
        }));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed on case {case}/{cases} (seed {seed:#x}): {msg}\n\
                 replay with SPLATT_QC_SEED={base} (same base) or inspect the case seed above"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        // Fn (not FnMut) required, so count via a Cell.
        let counter = std::cell::Cell::new(0u32);
        check("trivial", 16, |g| {
            let _ = g.u64();
            counter.set(counter.get() + 1);
        });
        count += counter.get();
        assert!(count >= 16);
    }

    #[test]
    fn failing_property_names_seed() {
        let result = std::panic::catch_unwind(|| {
            check("always fails", 4, |_g| panic!("boom"));
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("always fails"), "message: {msg}");
        assert!(msg.contains("seed"), "message: {msg}");
    }

    #[test]
    fn permutation_is_valid() {
        let mut g = Gen::from_seed(99);
        let p = g.permutation(50);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_is_deterministic() {
        let mut a = Gen::from_seed(5);
        let mut b = Gen::from_seed(5);
        for _ in 0..10 {
            assert_eq!(a.u64(), b.u64());
        }
    }
}
