//! Seedable pseudo-random number generation.
//!
//! [`StdRng`] is xoshiro256** (Blackman & Vigna) seeded through a
//! SplitMix64 expansion of a `u64` — fast, high-quality, and fully
//! deterministic per seed, which is all the synthetic-tensor generators
//! and tests need. The trait split ([`SeedableRng`] / [`RngExt`]) mirrors
//! the call-site idiom `use splatt_rt::rng::{RngExt, SeedableRng, StdRng}`.

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling surface: `random::<T>()` and `random_range(lo..hi)`.
pub trait RngExt {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open integer range. Panics if empty.
    #[inline]
    fn random_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Types producible by [`RngExt::random`].
pub trait Sample {
    fn sample<R: RngExt>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    #[inline]
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleRange: Copy {
    fn sample_range<R: RngExt>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

/// Debiased bounded sample in `[0, bound)` via Lemire-style rejection.
#[inline]
fn bounded_u64<R: RngExt>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply keeps the common case to one sample.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range<R: RngExt>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for i64 {
    #[inline]
    fn sample_range<R: RngExt>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(bounded_u64(rng, span) as i64)
    }
}

impl SampleRange for i32 {
    #[inline]
    fn sample_range<R: RngExt>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        let span = (range.end as i64 - range.start as i64) as u64;
        (range.start as i64 + bounded_u64(rng, span) as i64) as i32
    }
}

/// The workspace's standard RNG: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngExt for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// `rand`-style namespace so call sites can say `rng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(5u32..6);
            assert_eq!(v, 5);
        }
        let v = rng.random_range(-5i64..5);
        assert!((-5..5).contains(&v));
    }
}
