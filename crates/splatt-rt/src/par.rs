//! Scoped fork-join helpers for the few data-parallel loops that live
//! outside the `TaskTeam` world (dense kernels spread across std threads).
//!
//! These replace the `rayon` patterns the dense crate used: a parallel
//! map-reduce over index chunks and a parallel for-each over disjoint
//! mutable sub-slices. Threads are spawned per call via `std::thread::scope`
//! — fine for the coarse-grained kernels these serve, where each chunk is
//! thousands of FLOPs.

/// Number of worker threads to use by default: the machine's available
/// parallelism, capped to keep fork-join overhead sane.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Parallel map-reduce over `0..n_chunks`: `map(chunk_index)` on worker
/// threads, folded with `reduce`. Returns `identity()` when `n_chunks == 0`.
pub fn par_map_reduce<T, M, R, I>(n_chunks: usize, identity: I, map: M, reduce: R) -> T
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Send + Sync,
    I: Fn() -> T,
{
    let nthreads = current_num_threads().min(n_chunks.max(1));
    if n_chunks == 0 {
        return identity();
    }
    if nthreads <= 1 || n_chunks == 1 {
        let mut acc = map(0);
        for i in 1..n_chunks {
            acc = reduce(acc, map(i));
        }
        return acc;
    }
    let mut partials: Vec<Option<T>> = Vec::new();
    partials.resize_with(nthreads, || None);
    std::thread::scope(|scope| {
        for (tid, slot) in partials.iter_mut().enumerate() {
            let map = &map;
            let reduce = &reduce;
            scope.spawn(move || {
                let mut acc: Option<T> = None;
                let mut i = tid;
                while i < n_chunks {
                    let v = map(i);
                    acc = Some(match acc {
                        Some(a) => reduce(a, v),
                        None => v,
                    });
                    i += nthreads;
                }
                *slot = acc;
            });
        }
    });
    let mut acc: Option<T> = None;
    for p in partials.into_iter().flatten() {
        acc = Some(match acc {
            Some(a) => reduce(a, p),
            None => p,
        });
    }
    acc.unwrap_or_else(identity)
}

/// Parallel for-each over the chunks of a mutable slice, like
/// `slice.par_chunks_mut(chunk_len).enumerate().for_each(f)`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: zero chunk length");
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks <= 1 || current_num_threads() <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(i, chunk));
        }
    });
}

/// Parallel for-each over `0..n`, for loops whose bodies touch disjoint
/// state (the caller guarantees disjointness).
pub fn par_for_each<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let nthreads = current_num_threads().min(n.max(1));
    if nthreads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    std::thread::scope(|scope| {
        for tid in 0..nthreads {
            let f = &f;
            scope.spawn(move || {
                let mut i = tid;
                while i < n {
                    f(i);
                    i += nthreads;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_reduce_sums() {
        let total = par_map_reduce(100, || 0usize, |i| i, |a, b| a + b);
        assert_eq!(total, 4950);
        assert_eq!(par_map_reduce(0, || 7usize, |i| i, |a, b| a + b), 7);
        assert_eq!(par_map_reduce(1, || 0usize, |i| i + 5, |a, b| a + b), 5);
    }

    #[test]
    fn map_reduce_vec_accumulators() {
        let v = par_map_reduce(
            10,
            || vec![0.0f64; 4],
            |i| vec![i as f64; 4],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
        assert_eq!(v, vec![45.0; 4]);
    }

    #[test]
    fn chunks_mut_disjoint() {
        let mut data = vec![0usize; 37];
        par_chunks_mut(&mut data, 5, |i, chunk| {
            for x in chunk.iter_mut() {
                *x = i + 1;
            }
        });
        assert_eq!(data[0], 1);
        assert_eq!(data[36], 8);
        assert!(data.iter().all(|&x| x > 0));
    }

    #[test]
    fn for_each_covers_all() {
        let hits = AtomicUsize::new(0);
        par_for_each(123, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 123);
    }
}
