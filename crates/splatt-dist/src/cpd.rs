//! The medium-grained distributed CP-ALS driver.
//!
//! Per iteration and mode, in bulk-synchronous supersteps:
//!
//! 1. **local MTTKRP** — each rank runs the shared-memory kernel on its
//!    block (partial results touch only its mode range);
//! 2. **layer allreduce** — partials are summed within each mode layer
//!    (ranks sharing the index range); charged per group;
//! 3. **row update** — every rank solves the normal equations for the
//!    rows it owns (`M V^+` on its sub-range);
//! 4. **layer allgather** — updated rows circulate back to the layer;
//! 5. **global reductions** — column norms (`lambda`), the refreshed
//!    Gramian, and the fit terms are allreduced over all ranks.
//!
//! The arithmetic is identical to the shared-memory solver (the same sums
//! in a different association order), which the integration tests pin
//! down; what the distribution adds is the communication ledger.

use crate::comm::CommStats;
use crate::dist::TensorDistribution;
use splatt_core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt_core::{CsfAlloc, CsfSet, KruskalModel};
use splatt_dense::{hadamard_assign, mat_ata, normalize_columns, solve_normals, MatNorm, Matrix};
use splatt_faults::{FaultKind, FaultPlan, FaultRecord, RecoveryAction, RecoveryPolicy};
use splatt_par::{TaskTeam, TeamConfig};
use splatt_tensor::SortVariant;
use std::time::Duration;

/// Configuration for [`dist_cp_als`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistCpalsOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Maximum ALS iterations.
    pub max_iters: usize,
    /// Fit-improvement stopping tolerance (`0.0` = run all iterations).
    pub tolerance: f64,
    /// Seed for factor initialization.
    pub seed: u64,
    /// Recovery bounds for injected interconnect faults (retry budget,
    /// backoff schedule). Ignored when no fault plan is supplied.
    pub recovery: RecoveryPolicy,
    /// Wall-clock deadline: recovery sleeps (straggler absorption,
    /// retry backoff) clamp against it, and a collective still retrying
    /// past it fails with [`DistCpalsError::DeadlineExpired`] instead of
    /// sleeping the budget away.
    pub deadline: Option<splatt_guard::Deadline>,
}

impl Default for DistCpalsOptions {
    fn default() -> Self {
        DistCpalsOptions {
            rank: 10,
            max_iters: 20,
            tolerance: 0.0,
            seed: 0xD157,
            recovery: RecoveryPolicy::default(),
            deadline: None,
        }
    }
}

/// A distributed solve that could not complete.
#[derive(Debug)]
pub enum DistCpalsError {
    /// An injected interconnect fault exhausted its retry budget.
    Unrecovered {
        /// The fault kind that could not be recovered.
        kind: FaultKind,
        /// ALS iteration the fault hit.
        iteration: usize,
        /// Collective site (e.g. `mode 1 layer 0 allreduce`).
        site: String,
    },
    /// The run deadline expired while a collective was still retrying;
    /// retrying on is pointless, so the solve stops with a typed error
    /// instead of burning the rest of the budget in backoff sleeps.
    DeadlineExpired {
        /// ALS iteration the expiry hit.
        iteration: usize,
        /// Collective site that was mid-retry.
        site: String,
        /// Wall time consumed when the expiry was noticed.
        elapsed: Duration,
        /// The configured budget.
        limit: Duration,
    },
}

impl std::fmt::Display for DistCpalsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistCpalsError::Unrecovered {
                kind,
                iteration,
                site,
            } => write!(
                f,
                "unrecovered {} fault at iteration {iteration} ({site})",
                kind.label()
            ),
            DistCpalsError::DeadlineExpired {
                iteration,
                site,
                elapsed,
                limit,
            } => write!(
                f,
                "deadline expired at iteration {iteration} during {site} \
                 ({:.3}s elapsed of {:.3}s budget)",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for DistCpalsError {}

/// Result of a distributed solve.
#[derive(Debug)]
pub struct DistCpalsOutput {
    /// The fitted model (assembled globally).
    pub model: KruskalModel,
    /// Final fit.
    pub fit: f64,
    /// Fit after each iteration.
    pub fits: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Simulated interconnect traffic.
    pub comm: CommStats,
}

/// Run medium-grained CP-ALS over a distributed tensor.
///
/// ```
/// use splatt_dist::{dist_cp_als, DistCpalsOptions, ProcessGrid, TensorDistribution};
/// use splatt_tensor::synth;
///
/// let tensor = synth::random_uniform(&[20, 20, 20], 2_000, 3);
/// let dist = TensorDistribution::new(&tensor, ProcessGrid::new(vec![2, 2, 1]));
/// let out = dist_cp_als(&dist, &DistCpalsOptions { rank: 4, max_iters: 3, ..Default::default() });
/// assert!(out.fit.is_finite());
/// assert!(out.comm.total_bytes() > 0); // factor rows crossed the (simulated) wire
/// ```
///
/// # Panics
/// Panics if `rank` or `max_iters` is zero.
pub fn dist_cp_als(dist: &TensorDistribution, opts: &DistCpalsOptions) -> DistCpalsOutput {
    try_dist_cp_als(dist, opts, None).unwrap_or_else(|e| panic!("dist_cp_als: {e}"))
}

/// Run the fault protocol for one collective: a corrupted payload is
/// detected (checksum) and retransmitted; a dropped collective is retried
/// with exponential backoff, charging the wire again for each attempt.
///
/// Injected interconnect faults never change the arithmetic — recovery in
/// the simulation means extra ledger traffic and an event record — so a
/// run that recovers from every fault produces the exact bits of the
/// fault-free run (the invariant `tests/fault_tolerance.rs` pins down).
struct FaultCtx<'a> {
    plan: &'a FaultPlan,
    policy: RecoveryPolicy,
    comm: &'a CommStats,
    deadline: Option<splatt_guard::Deadline>,
}

impl FaultCtx<'_> {
    fn collective(
        &self,
        it: usize,
        unit: usize,
        site: &str,
        payload_bytes: u64,
        recharge: &dyn Fn(),
    ) -> Result<(), DistCpalsError> {
        if self.plan.roll(FaultKind::CorruptPayload, it, unit, 0) {
            self.comm.charge_retransmit(payload_bytes);
            self.plan.record(FaultRecord {
                kind: FaultKind::CorruptPayload,
                iteration: it,
                site: site.to_string(),
                action: RecoveryAction::Retransmitted {
                    bytes: payload_bytes,
                },
            });
        }
        let mut attempts = 0u32;
        while self
            .plan
            .roll(FaultKind::DroppedCollective, it, unit, attempts)
        {
            attempts += 1;
            if attempts > self.policy.max_retries {
                self.plan.record(FaultRecord {
                    kind: FaultKind::DroppedCollective,
                    iteration: it,
                    site: site.to_string(),
                    action: RecoveryAction::Unrecovered,
                });
                return Err(DistCpalsError::Unrecovered {
                    kind: FaultKind::DroppedCollective,
                    iteration: it,
                    site: site.to_string(),
                });
            }
            // a retry past the deadline cannot help: fail typed instead
            // of sleeping away wall clock nobody has
            if let Some(dl) = self.deadline {
                if dl.expired() {
                    self.plan.record(FaultRecord {
                        kind: FaultKind::DroppedCollective,
                        iteration: it,
                        site: site.to_string(),
                        action: RecoveryAction::Unrecovered,
                    });
                    return Err(DistCpalsError::DeadlineExpired {
                        iteration: it,
                        site: site.to_string(),
                        elapsed: dl.elapsed(),
                        limit: dl.limit(),
                    });
                }
            }
            let backoff = self.policy.backoff_duration(attempts - 1);
            std::thread::sleep(self.deadline.map_or(backoff, |dl| dl.clamp(backoff)));
            self.comm.charge_retry();
            recharge();
        }
        if attempts > 0 {
            self.plan.record(FaultRecord {
                kind: FaultKind::DroppedCollective,
                iteration: it,
                site: site.to_string(),
                action: RecoveryAction::Retried {
                    attempts,
                    backoff_nanos: self.policy.total_backoff_nanos(attempts),
                },
            });
        }
        Ok(())
    }
}

/// Fallible [`dist_cp_als`] with optional interconnect fault injection.
///
/// With a fault plan, collectives can be hit by payload corruption
/// (recovered by retransmission), drops (recovered by bounded
/// retry-with-backoff), and stragglers (absorbed delay). Recovered faults
/// only grow the communication ledger and the plan's event log; the
/// numerical result is bit-identical to the fault-free run.
///
/// # Errors
/// [`DistCpalsError`] when a dropped collective exhausts
/// `opts.recovery.max_retries`.
///
/// # Panics
/// Panics if `rank` or `max_iters` is zero.
pub fn try_dist_cp_als(
    dist: &TensorDistribution,
    opts: &DistCpalsOptions,
    faults: Option<&FaultPlan>,
) -> Result<DistCpalsOutput, DistCpalsError> {
    assert!(opts.rank > 0, "rank must be positive");
    assert!(opts.max_iters > 0, "max_iters must be positive");

    let grid = dist.grid();
    let nprocs = grid.nprocs();
    let order = grid.order();
    let rank = opts.rank;
    let dims: Vec<usize> = (0..order)
        .map(|m| dist.mode_range(m, grid.dims()[m] - 1).end)
        .collect();
    let comm = CommStats::new();

    // Each simulated locale gets a single-task team (intra-locale
    // threading is the shared-memory solver's job, not this layer's).
    let team = TaskTeam::with_config(1, TeamConfig::short_spin());
    let cfg = MttkrpConfig::default();

    // per-rank CSF of the local block
    let sets: Vec<CsfSet> = (0..nprocs)
        .map(|r| CsfSet::build(dist.block(r), CsfAlloc::Two, &team, SortVariant::AllOpts))
        .collect();
    let mut workspaces: Vec<MttkrpWorkspace> =
        (0..nprocs).map(|_| MttkrpWorkspace::new(&cfg, 1)).collect();

    // replicated state (every rank holds the factor rows its block needs;
    // the simulation stores one global copy and charges the exchanges)
    let mut factors: Vec<Matrix> = dims
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, rank, opts.seed.wrapping_add(m as u64)))
        .collect();
    let mut lambda = vec![0.0; rank];
    let mut ata: Vec<Matrix> = factors.iter().map(mat_ata).collect();
    let norm_x_sq: f64 = (0..nprocs).map(|r| dist.block(r).norm_squared()).sum();

    let mut fits = Vec::with_capacity(opts.max_iters);
    let mut oldfit = 0.0;
    let mut iterations = 0;
    let mut last_m = Matrix::zeros(dims[order - 1], rank);
    let policy = opts.recovery;
    let fctx = faults.map(|plan| FaultCtx {
        plan,
        policy,
        comm: &comm,
        deadline: opts.deadline,
    });
    // distinct fault-site units: per-layer collectives first, then the
    // global reductions after them
    let global_unit_base = 2 * order * nprocs;

    for it in 0..opts.max_iters {
        iterations = it + 1;
        for mode in 0..order {
            let dim = dims[mode];
            let extent = grid.dims()[mode];
            let group_size = nprocs / extent;

            // ---- superstep 1: local MTTKRPs, summed into the global M ----
            let mut m_global = Matrix::zeros(dim, rank);
            for r in 0..nprocs {
                if dist.block(r).nnz() == 0 {
                    continue;
                }
                // straggler fault: this rank enters the superstep late and
                // the bulk-synchronous barrier absorbs the delay
                if let Some(plan) = faults {
                    if plan.roll(FaultKind::Straggler, it, mode * nprocs + r, 0) {
                        let delay =
                            Duration::from_nanos(plan.straggler_delay_nanos(it, mode * nprocs + r));
                        let delay = opts.deadline.map_or(delay, |dl| dl.clamp(delay));
                        std::thread::sleep(delay);
                        plan.record(FaultRecord {
                            kind: FaultKind::Straggler,
                            iteration: it,
                            site: format!("mode {mode} rank {r} mttkrp"),
                            action: RecoveryAction::AbsorbedDelay {
                                nanos: delay.as_nanos() as u64,
                            },
                        });
                    }
                }
                let mut partial = Matrix::zeros(dim, rank);
                mttkrp(
                    &sets[r],
                    &factors,
                    mode,
                    &mut partial,
                    &mut workspaces[r],
                    &team,
                    &cfg,
                );
                m_global.add_assign(&partial);
            }
            // ---- superstep 2: allreduce partials within each layer ----
            for layer in 0..extent {
                let range = dist.mode_range(mode, layer);
                let elems = (range.end - range.start) * rank;
                comm.charge_allreduce(group_size, elems);
                if let Some(ctx) = &fctx {
                    if group_size > 1 {
                        ctx.collective(
                            it,
                            2 * mode * nprocs + layer,
                            &format!("mode {mode} layer {layer} allreduce"),
                            (elems * 8) as u64,
                            &|| comm.charge_allreduce(group_size, elems),
                        )?;
                    }
                }
            }

            // ---- superstep 3: solve owned rows (globally equivalent) ----
            let mut v = Matrix::filled(rank, rank, 1.0);
            for (m, g) in ata.iter().enumerate() {
                if m != mode {
                    hadamard_assign(&mut v, g);
                }
            }
            factors[mode]
                .as_mut_slice()
                .copy_from_slice(m_global.as_slice());
            solve_normals(&v, &mut factors[mode]);

            // ---- superstep 4: allgather updated rows within each layer ----
            for layer in 0..extent {
                let range = dist.mode_range(mode, layer);
                let elems = (range.end - range.start) * rank;
                comm.charge_allgather(group_size, elems);
                if let Some(ctx) = &fctx {
                    if group_size > 1 {
                        ctx.collective(
                            it,
                            (2 * mode + 1) * nprocs + layer,
                            &format!("mode {mode} layer {layer} allgather"),
                            (elems * 8) as u64,
                            &|| comm.charge_allgather(group_size, elems),
                        )?;
                    }
                }
            }

            // ---- superstep 5: global reductions ----
            let which = if it == 0 { MatNorm::Two } else { MatNorm::Max };
            normalize_columns(&mut factors[mode], &mut lambda, which);
            comm.charge_allreduce(nprocs, rank); // column norms

            ata[mode] = mat_ata(&factors[mode]);
            comm.charge_allreduce(nprocs, rank * rank); // Gramian

            if let Some(ctx) = &fctx {
                if nprocs > 1 {
                    ctx.collective(
                        it,
                        global_unit_base + 2 * mode,
                        &format!("mode {mode} norms allreduce"),
                        (rank * 8) as u64,
                        &|| comm.charge_allreduce(nprocs, rank),
                    )?;
                    ctx.collective(
                        it,
                        global_unit_base + 2 * mode + 1,
                        &format!("mode {mode} gram allreduce"),
                        (rank * rank * 8) as u64,
                        &|| comm.charge_allreduce(nprocs, rank * rank),
                    )?;
                }
            }

            if mode == order - 1 {
                last_m.as_mut_slice().copy_from_slice(m_global.as_slice());
            }
        }

        let fit = compute_fit(norm_x_sq, &lambda, &ata, &factors[order - 1], &last_m);
        comm.charge_allreduce(nprocs, 2); // inner product + local norms
        if let Some(ctx) = &fctx {
            if nprocs > 1 {
                ctx.collective(
                    it,
                    global_unit_base + 2 * order,
                    "fit allreduce",
                    16,
                    &|| comm.charge_allreduce(nprocs, 2),
                )?;
            }
        }
        fits.push(fit);
        if opts.tolerance > 0.0 && it > 0 && (fit - oldfit).abs() < opts.tolerance {
            break;
        }
        oldfit = fit;
    }

    Ok(DistCpalsOutput {
        model: KruskalModel { lambda, factors },
        fit: fits.last().copied().unwrap_or(0.0),
        fits,
        iterations,
        comm,
    })
}

/// Same fit formula as the shared-memory driver.
fn compute_fit(
    norm_x_sq: f64,
    lambda: &[f64],
    ata: &[Matrix],
    last_factor: &Matrix,
    last_m: &Matrix,
) -> f64 {
    if norm_x_sq == 0.0 {
        return 0.0;
    }
    let rank = lambda.len();
    let mut had = Matrix::filled(rank, rank, 1.0);
    for g in ata {
        hadamard_assign(&mut had, g);
    }
    let mut norm_z_sq = 0.0;
    for r in 0..rank {
        for s in 0..rank {
            norm_z_sq += lambda[r] * had[(r, s)] * lambda[s];
        }
    }
    let mut inner = 0.0;
    for i in 0..last_factor.rows() {
        for ((&f, &m), &l) in last_factor.row(i).iter().zip(last_m.row(i)).zip(lambda) {
            inner += f * m * l;
        }
    }
    let residual_sq = (norm_x_sq + norm_z_sq - 2.0 * inner).max(0.0);
    1.0 - residual_sq.sqrt() / norm_x_sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcessGrid;
    use splatt_core::{cp_als, CpalsOptions};
    use splatt_tensor::synth;

    fn planted() -> splatt_tensor::SparseTensor {
        synth::planted_dense(&[16, 12, 10], 2, 0.0, 77).0
    }

    #[test]
    fn matches_shared_memory_fit() {
        let t = planted();
        let shared = cp_als(
            &t,
            &CpalsOptions {
                rank: 2,
                max_iters: 12,
                tolerance: 0.0,
                ntasks: 1,
                seed: 0xD157,
                ..Default::default()
            },
        );
        for grid in [vec![1, 1, 1], vec![2, 1, 1], vec![2, 2, 1], vec![2, 2, 2]] {
            let dist = TensorDistribution::new(&t, ProcessGrid::new(grid.clone()));
            let out = dist_cp_als(
                &dist,
                &DistCpalsOptions {
                    rank: 2,
                    max_iters: 12,
                    tolerance: 0.0,
                    seed: 0xD157,
                    ..Default::default()
                },
            );
            assert!(
                (out.fit - shared.fit).abs() < 1e-8,
                "grid {grid:?}: fit {} vs shared {}",
                out.fit,
                shared.fit
            );
        }
    }

    #[test]
    fn single_locale_has_zero_communication() {
        let t = planted();
        let dist = TensorDistribution::new(&t, ProcessGrid::single(3));
        let out = dist_cp_als(
            &dist,
            &DistCpalsOptions {
                max_iters: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.comm.total_bytes(), 0);
    }

    #[test]
    fn communication_grows_with_grid_extent() {
        let t = synth::power_law(&[40, 40, 40], 5_000, 1.5, 5);
        let volume = |grid: Vec<usize>| {
            let dist = TensorDistribution::new(&t, ProcessGrid::new(grid));
            dist_cp_als(
                &dist,
                &DistCpalsOptions {
                    max_iters: 2,
                    ..Default::default()
                },
            )
            .comm
            .total_bytes()
        };
        let v1 = volume(vec![1, 1, 1]);
        let v2 = volume(vec![2, 1, 1]);
        let v8 = volume(vec![2, 2, 2]);
        assert_eq!(v1, 0);
        assert!(v2 > 0);
        assert!(v8 > v2, "8-rank volume {v8} <= 2-rank volume {v2}");
    }

    #[test]
    fn flat_grids_cost_more_than_cubes() {
        // the medium-grained paper's headline: balanced grids reduce the
        // factor-exchange volume vs. one-dimensional decompositions
        let t = synth::power_law(&[48, 48, 48], 8_000, 1.3, 11);
        let volume = |grid: Vec<usize>| {
            let dist = TensorDistribution::new(&t, ProcessGrid::new(grid));
            dist_cp_als(
                &dist,
                &DistCpalsOptions {
                    max_iters: 2,
                    ..Default::default()
                },
            )
            .comm
            .total_bytes()
        };
        let cube = volume(vec![2, 2, 2]);
        let flat = volume(vec![8, 1, 1]);
        assert!(
            cube < flat,
            "cube grid volume {cube} not below flat grid volume {flat}"
        );
    }

    #[test]
    fn converges_on_planted_tensor() {
        let t = planted();
        let dist = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 2, 1]));
        let out = dist_cp_als(
            &dist,
            &DistCpalsOptions {
                rank: 2,
                max_iters: 40,
                tolerance: 0.0,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(out.fit > 0.97, "fit {}", out.fit);
    }

    #[test]
    fn recovered_interconnect_faults_do_not_change_the_bits() {
        use splatt_faults::{FaultPlan, FaultRates};
        let t = planted();
        let dist = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 2, 1]));
        let opts = DistCpalsOptions {
            rank: 2,
            max_iters: 8,
            ..Default::default()
        };
        let clean = dist_cp_als(&dist, &opts);
        let plan = FaultPlan::new(
            0xFA,
            FaultRates {
                straggler: 0.1,
                dropped: 0.1,
                corrupt: 0.1,
                nan: 0.0,
                nonspd: 0.0,
            },
        );
        let faulty = try_dist_cp_als(&dist, &opts, Some(&plan)).expect("recoverable plan");
        // recovery in the simulated interconnect is pure ledger + events:
        // the arithmetic stream is untouched
        assert_eq!(clean.fit.to_bits(), faulty.fit.to_bits());
        for (a, b) in clean.fits.iter().zip(&faulty.fits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(plan.event_count() > 0, "no faults fired at these rates");
        assert!(!plan.any_unrecovered());
        // ... but the recovery traffic is visible in the ledger
        assert!(faulty.comm.total_bytes() > clean.comm.total_bytes());
        assert!(faulty.comm.retransmits() + faulty.comm.retries() > 0);
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error() {
        use splatt_faults::{FaultPlan, FaultRates};
        let t = planted();
        let dist = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 1, 1]));
        // every attempt of every collective drops: retries must run out
        let plan = FaultPlan::new(
            7,
            FaultRates {
                straggler: 0.0,
                dropped: 1.0,
                corrupt: 0.0,
                nan: 0.0,
                nonspd: 0.0,
            },
        );
        let err = try_dist_cp_als(
            &dist,
            &DistCpalsOptions {
                rank: 2,
                max_iters: 2,
                ..Default::default()
            },
            Some(&plan),
        )
        .expect_err("all-drop plan must exhaust retries");
        match &err {
            DistCpalsError::Unrecovered { kind, .. } => {
                assert_eq!(*kind, splatt_faults::FaultKind::DroppedCollective);
            }
            other => panic!("expected Unrecovered, got {other:?}"),
        }
        assert!(plan.any_unrecovered());
        assert!(err.to_string().contains("unrecovered"));
    }

    #[test]
    fn expired_deadline_fails_retries_typed_instead_of_sleeping() {
        use splatt_faults::{FaultPlan, FaultRates};
        let t = planted();
        let dist = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 1, 1]));
        // drops on every attempt would normally burn the whole backoff
        // schedule; an already-expired deadline must cut that short
        let plan = FaultPlan::new(
            7,
            FaultRates {
                straggler: 0.0,
                dropped: 1.0,
                corrupt: 0.0,
                nan: 0.0,
                nonspd: 0.0,
            },
        );
        let start = std::time::Instant::now();
        let err = try_dist_cp_als(
            &dist,
            &DistCpalsOptions {
                rank: 2,
                max_iters: 2,
                deadline: Some(splatt_guard::Deadline::after(Duration::ZERO)),
                ..Default::default()
            },
            Some(&plan),
        )
        .expect_err("expired deadline must surface");
        match &err {
            DistCpalsError::DeadlineExpired { limit, .. } => {
                assert_eq!(*limit, Duration::ZERO);
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert!(err.to_string().contains("deadline expired"));
        // no backoff sleeps happened on the way out
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "retry path slept past an expired deadline"
        );
    }

    #[test]
    fn deadline_clamped_stragglers_preserve_the_bits() {
        use splatt_faults::{FaultPlan, FaultRates};
        let t = planted();
        let dist = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 2, 1]));
        let opts = DistCpalsOptions {
            rank: 2,
            max_iters: 6,
            ..Default::default()
        };
        let clean = dist_cp_als(&dist, &opts);
        let plan = FaultPlan::new(
            0xFA,
            FaultRates {
                straggler: 0.3,
                dropped: 0.0,
                corrupt: 0.0,
                nan: 0.0,
                nonspd: 0.0,
            },
        );
        // an expired deadline clamps every straggler absorption to zero
        // sleep; the arithmetic stream must still be untouched
        let faulty = try_dist_cp_als(
            &dist,
            &DistCpalsOptions {
                deadline: Some(splatt_guard::Deadline::after(Duration::ZERO)),
                ..opts
            },
            Some(&plan),
        )
        .expect("stragglers alone are always recoverable");
        assert_eq!(clean.fit.to_bits(), faulty.fit.to_bits());
        assert!(plan.event_count() > 0, "no stragglers fired");
    }

    #[test]
    fn empty_blocks_are_tolerated() {
        // tensor confined to one octant: most blocks empty
        let mut t = splatt_tensor::SparseTensor::new(vec![8, 8, 8]);
        for i in 0..4u32 {
            t.push(&[i, i % 4, i % 4], 1.0 + i as f64);
        }
        let dist = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 2, 2]));
        let out = dist_cp_als(
            &dist,
            &DistCpalsOptions {
                rank: 2,
                max_iters: 3,
                ..Default::default()
            },
        );
        assert!(out.fit.is_finite());
    }
}
