//! Medium-grained tensor distribution over a process grid.

use crate::grid::ProcessGrid;
use splatt_par::partition;
use splatt_tensor::SparseTensor;

/// A tensor partitioned into per-rank blocks: rank `(i1..iN)` owns the
/// nonzeros whose mode-`m` index falls in chunk `i_m` of that mode, for
/// every mode. Chunk boundaries are balanced by per-index nonzero counts
/// (the medium-grained paper's "chunking" step).
#[derive(Debug, Clone)]
pub struct TensorDistribution {
    grid: ProcessGrid,
    /// Per mode: `grid.dims()[m] + 1` index boundaries.
    mode_bounds: Vec<Vec<usize>>,
    /// Per rank: its block (global indices, global dims).
    blocks: Vec<SparseTensor>,
}

impl TensorDistribution {
    /// Partition `tensor` over `grid`.
    ///
    /// # Panics
    /// Panics if the grid order differs from the tensor order.
    pub fn new(tensor: &SparseTensor, grid: ProcessGrid) -> Self {
        assert_eq!(
            grid.order(),
            tensor.order(),
            "grid order must match tensor order"
        );
        let order = tensor.order();

        // nnz-balanced chunk boundaries per mode
        let mut mode_bounds = Vec::with_capacity(order);
        for m in 0..order {
            let mut hist = vec![0usize; tensor.dims()[m]];
            for &i in tensor.ind(m) {
                hist[i as usize] += 1;
            }
            let prefix = partition::prefix_sum(&hist);
            mode_bounds.push(partition::weighted(&prefix, grid.dims()[m]));
        }

        // route each nonzero to its block
        let chunk_of = |m: usize, idx: usize| -> usize {
            let bounds = &mode_bounds[m];
            // last boundary <= idx (bounds may repeat for empty chunks)
            let mut c = bounds.partition_point(|&b| b <= idx) - 1;
            c = c.min(grid.dims()[m] - 1);
            c
        };
        let mut blocks: Vec<SparseTensor> = (0..grid.nprocs())
            .map(|_| SparseTensor::new(tensor.dims().to_vec()))
            .collect();
        let mut coord = vec![0u32; order];
        let mut gcoord = vec![0usize; order];
        for x in 0..tensor.nnz() {
            for m in 0..order {
                coord[m] = tensor.ind(m)[x];
                gcoord[m] = chunk_of(m, coord[m] as usize);
            }
            blocks[grid.rank_of(&gcoord)].push(&coord, tensor.vals()[x]);
        }

        TensorDistribution {
            grid,
            mode_bounds,
            blocks,
        }
    }

    /// The grid.
    pub fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    /// Rank `r`'s local block.
    pub fn block(&self, rank: usize) -> &SparseTensor {
        &self.blocks[rank]
    }

    /// Index range of chunk `layer` in `mode`.
    pub fn mode_range(&self, mode: usize, layer: usize) -> std::ops::Range<usize> {
        self.mode_bounds[mode][layer]..self.mode_bounds[mode][layer + 1]
    }

    /// The mode-`mode` index range `rank`'s block lives in.
    pub fn rank_mode_range(&self, rank: usize, mode: usize) -> std::ops::Range<usize> {
        let layer = self.grid.coords_of(rank)[mode];
        self.mode_range(mode, layer)
    }

    /// The sub-range of factor rows `rank` *owns* (updates) in `mode`:
    /// the layer's range split evenly among the layer group's members.
    pub fn owned_rows(&self, rank: usize, mode: usize) -> std::ops::Range<usize> {
        let range = self.rank_mode_range(rank, mode);
        let group = self.grid.layer_group(rank, mode);
        let pos = group
            .iter()
            .position(|&r| r == rank)
            .expect("rank must belong to its own layer group");
        let local = partition::block(range.end - range.start, group.len(), pos);
        (range.start + local.start)..(range.start + local.end)
    }

    /// Nonzeros summed across blocks (equals the source tensor's count).
    pub fn total_nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// Heaviest block's nonzero count (load-balance indicator).
    pub fn max_block_nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splatt_tensor::synth;

    fn dist(grid_dims: Vec<usize>) -> (SparseTensor, TensorDistribution) {
        let t = synth::power_law(&[30, 24, 40], 4_000, 1.6, 3);
        let d = TensorDistribution::new(&t, ProcessGrid::new(grid_dims));
        (t, d)
    }

    #[test]
    fn blocks_partition_the_nonzeros() {
        let (t, d) = dist(vec![2, 3, 2]);
        assert_eq!(d.total_nnz(), t.nnz());
        // union of block entries equals the original multiset
        let mut all: Vec<_> = (0..d.grid().nprocs())
            .flat_map(|r| d.block(r).canonical_entries())
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(all, t.canonical_entries());
    }

    #[test]
    fn block_indices_respect_ranges() {
        let (_, d) = dist(vec![2, 2, 2]);
        for r in 0..8 {
            let block = d.block(r);
            for m in 0..3 {
                let range = d.rank_mode_range(r, m);
                for &i in block.ind(m) {
                    assert!(
                        range.contains(&(i as usize)),
                        "rank {r} mode {m}: index {i} outside {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mode_ranges_tile_each_dimension() {
        let (t, d) = dist(vec![2, 3, 2]);
        for m in 0..3 {
            let extent = d.grid().dims()[m];
            assert_eq!(d.mode_range(m, 0).start, 0);
            assert_eq!(d.mode_range(m, extent - 1).end, t.dims()[m]);
            for l in 1..extent {
                assert_eq!(d.mode_range(m, l - 1).end, d.mode_range(m, l).start);
            }
        }
    }

    #[test]
    fn owned_rows_partition_each_layer_range() {
        let (_, d) = dist(vec![2, 2, 2]);
        for mode in 0..3 {
            for layer in 0..2 {
                // ranks in this layer
                let rep = (0..8)
                    .find(|&r| d.grid().coords_of(r)[mode] == layer)
                    .unwrap();
                let group = d.grid().layer_group(rep, mode);
                let range = d.mode_range(mode, layer);
                let mut covered = vec![false; range.end - range.start];
                for &r in &group {
                    for i in d.owned_rows(r, mode) {
                        assert!(!covered[i - range.start], "row {i} owned twice");
                        covered[i - range.start] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "mode {mode} layer {layer}");
            }
        }
    }

    #[test]
    fn single_grid_owns_everything() {
        let t = synth::random_uniform(&[10, 10, 10], 500, 1);
        let d = TensorDistribution::new(&t, ProcessGrid::single(3));
        assert_eq!(d.block(0).nnz(), 500);
        for m in 0..3 {
            assert_eq!(d.owned_rows(0, m), 0..10);
        }
    }

    #[test]
    fn blocks_are_roughly_balanced_on_uniform_data() {
        let t = synth::random_uniform(&[64, 64, 64], 16_000, 9);
        let d = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 2, 2]));
        // perfect balance would be 2000 per block; allow generous slack
        // (block balance is the product of three 1-D balances)
        assert!(
            d.max_block_nnz() < 4_000,
            "max block {} of 16000",
            d.max_block_nnz()
        );
    }

    #[test]
    #[should_panic(expected = "grid order")]
    fn wrong_grid_order_rejected() {
        let t = synth::random_uniform(&[5, 5, 5], 50, 2);
        let _ = TensorDistribution::new(&t, ProcessGrid::new(vec![2, 2]));
    }
}
