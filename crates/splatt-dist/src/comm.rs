//! Communication-volume accounting for the simulated interconnect.
//!
//! The simulation performs exchanges through shared memory, but every
//! collective charges [`CommStats`] the bytes the textbook algorithm
//! would move on a real network:
//!
//! * ring **allreduce** of `n` bytes over `g` ranks: each rank sends
//!   `2 (g-1) / g * n` bytes (reduce-scatter + allgather phases);
//! * **allgather** where each of `g` ranks contributes `n_i` bytes: each
//!   rank sends its contribution `g - 1` times in the ring.
//!
//! Single-rank groups cost nothing — a `1 x 1 x ... x 1` grid reports
//! zero communication, which the tests pin down.

use std::sync::atomic::{AtomicU64, Ordering};

/// Byte counters for one distributed solve.
#[derive(Debug, Default)]
pub struct CommStats {
    allreduce_bytes: AtomicU64,
    allgather_bytes: AtomicU64,
    collectives: AtomicU64,
    retransmit_bytes: AtomicU64,
    retransmits: AtomicU64,
    retries: AtomicU64,
}

impl CommStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a ring allreduce of `elems` f64 values over `group_size`
    /// ranks (total bytes across all ranks).
    ///
    /// The total is computed exactly as `2 n (g - 1)` bytes — summing the
    /// reduce-scatter and allgather phases over the whole ring — rather
    /// than rounding a per-rank share `2 n (g-1) / g` down to whole bytes
    /// and multiplying back up, which undercounts whenever `g` does not
    /// divide `2 n (g-1)`.
    pub fn charge_allreduce(&self, group_size: usize, elems: usize) {
        if group_size <= 1 {
            return;
        }
        let n = (elems * 8) as u64;
        self.allreduce_bytes
            .fetch_add(2 * n * (group_size as u64 - 1), Ordering::Relaxed);
        self.collectives.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge an allgather over `group_size` ranks where together they
    /// contribute `total_elems` f64 values (total bytes across all ranks:
    /// every contribution traverses the ring `g - 1` times).
    pub fn charge_allgather(&self, group_size: usize, total_elems: usize) {
        if group_size <= 1 {
            return;
        }
        let n = (total_elems * 8) as u64;
        self.allgather_bytes
            .fetch_add(n * (group_size as u64 - 1), Ordering::Relaxed);
        self.collectives.fetch_add(1, Ordering::Relaxed);
    }

    /// Charge a detected-corruption retransmission of `bytes` (checksum
    /// failure on a collective payload: the data crosses the wire again).
    pub fn charge_retransmit(&self, bytes: u64) {
        self.retransmit_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one retry of a dropped/failed collective.
    pub fn charge_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total allreduce bytes.
    pub fn allreduce_bytes(&self) -> u64 {
        self.allreduce_bytes.load(Ordering::Relaxed)
    }

    /// Total allgather bytes.
    pub fn allgather_bytes(&self) -> u64 {
        self.allgather_bytes.load(Ordering::Relaxed)
    }

    /// Bytes resent after payload-corruption detection.
    pub fn retransmit_bytes(&self) -> u64 {
        self.retransmit_bytes.load(Ordering::Relaxed)
    }

    /// Number of retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }

    /// Number of collective retries after simulated drops.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total bytes across collective kinds, including fault-recovery
    /// retransmissions.
    pub fn total_bytes(&self) -> u64 {
        self.allreduce_bytes() + self.allgather_bytes() + self.retransmit_bytes()
    }

    /// Number of collectives issued (retried collectives charge once per
    /// attempt — each attempt moves bytes on a real network).
    pub fn collectives(&self) -> u64 {
        self.collectives.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_groups_are_free() {
        let c = CommStats::new();
        c.charge_allreduce(1, 1_000);
        c.charge_allgather(1, 1_000);
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.collectives(), 0);
    }

    #[test]
    fn allreduce_ring_cost() {
        let c = CommStats::new();
        // 4 ranks, 100 elems = 800 bytes: per-rank 2*800*3/4 = 1200; total 4800
        c.charge_allreduce(4, 100);
        assert_eq!(c.allreduce_bytes(), 4_800);
        assert_eq!(c.collectives(), 1);
    }

    #[test]
    fn allgather_cost() {
        let c = CommStats::new();
        // 3 ranks, 300 elems total = 2400 bytes, each byte crosses 2 hops
        c.charge_allgather(3, 300);
        assert_eq!(c.allgather_bytes(), 4_800);
    }

    #[test]
    fn charges_accumulate() {
        let c = CommStats::new();
        c.charge_allreduce(2, 10); // 2 * 80 * 1 = 160
        c.charge_allreduce(2, 10);
        assert_eq!(c.allreduce_bytes(), 320);
        assert_eq!(c.collectives(), 2);
    }

    #[test]
    fn allreduce_cost_is_exact_for_non_divisible_groups() {
        // 3 ranks, 10 elems = 80 bytes: exact total 2*80*2 = 320 bytes.
        // The old per-rank formula floored 320/3 to 106 and reported
        // 106*3 = 318 — a 2-byte undercount per collective.
        let c = CommStats::new();
        c.charge_allreduce(3, 10);
        assert_eq!(c.allreduce_bytes(), 320);

        // 7 ranks, 1 elem = 8 bytes: exact 2*8*6 = 96 (floor gave 91).
        let c = CommStats::new();
        c.charge_allreduce(7, 1);
        assert_eq!(c.allreduce_bytes(), 96);
    }

    #[test]
    fn retransmits_and_retries_are_tracked() {
        let c = CommStats::new();
        assert_eq!(c.retransmit_bytes(), 0);
        c.charge_retransmit(640);
        c.charge_retransmit(160);
        c.charge_retry();
        assert_eq!(c.retransmit_bytes(), 800);
        assert_eq!(c.retransmits(), 2);
        assert_eq!(c.retries(), 1);
        // recovery traffic is real traffic
        assert_eq!(c.total_bytes(), 800);
    }
}
