//! The process grid of the medium-grained algorithm.

/// An `N`-dimensional grid of `p1 * p2 * ... * pN` ranks. Rank `r`'s grid
/// coordinates follow row-major order (last dimension fastest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGrid {
    dims: Vec<usize>,
}

impl ProcessGrid {
    /// Create a grid with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any extent is zero.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "grid needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "grid extents must be positive");
        ProcessGrid { dims }
    }

    /// A `1 x 1 x ... x 1` grid (single locale; zero communication).
    pub fn single(order: usize) -> Self {
        ProcessGrid::new(vec![1; order])
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of grid dimensions (must equal the tensor order).
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Total rank count.
    pub fn nprocs(&self) -> usize {
        self.dims.iter().product()
    }

    /// Grid coordinates of `rank`.
    ///
    /// # Panics
    /// Panics if `rank >= nprocs()`.
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.nprocs(), "rank out of range");
        let mut rest = rank;
        let mut coords = vec![0; self.order()];
        for (c, &d) in coords.iter_mut().zip(&self.dims).rev() {
            *c = rest % d;
            rest /= d;
        }
        coords
    }

    /// Rank with the given grid coordinates.
    ///
    /// # Panics
    /// Panics on wrong arity or out-of-range coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.order(), "coordinate arity mismatch");
        let mut rank = 0;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "grid coordinate out of range");
            rank = rank * d + c;
        }
        rank
    }

    /// The *layer group* of `rank` for `mode`: every rank whose grid
    /// coordinate along `mode` equals `rank`'s. These ranks share the
    /// same mode-`mode` index range and are the communicator for that
    /// mode's factor exchange. The result is sorted; `rank` is included.
    pub fn layer_group(&self, rank: usize, mode: usize) -> Vec<usize> {
        assert!(mode < self.order(), "mode out of range");
        let me = self.coords_of(rank);
        self.ranks_with_coord(mode, me[mode])
    }

    /// Every rank whose grid coordinate along `mode` equals `coord`,
    /// sorted ascending. This is [`ProcessGrid::layer_group`] addressed
    /// by layer index instead of by a member rank — the form the serving
    /// cluster uses to enumerate a shard's replica set on an
    /// `[nshards, nreplicas]` grid.
    ///
    /// # Panics
    /// Panics on an out-of-range `mode` or `coord`.
    pub fn ranks_with_coord(&self, mode: usize, coord: usize) -> Vec<usize> {
        assert!(mode < self.order(), "mode out of range");
        assert!(coord < self.dims[mode], "grid coordinate out of range");
        (0..self.nprocs())
            .filter(|&r| self.coords_of(r)[mode] == coord)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = ProcessGrid::new(vec![2, 3, 2]);
        assert_eq!(g.nprocs(), 12);
        for r in 0..12 {
            assert_eq!(g.rank_of(&g.coords_of(r)), r);
        }
    }

    #[test]
    fn row_major_layout() {
        let g = ProcessGrid::new(vec![2, 3]);
        assert_eq!(g.coords_of(0), vec![0, 0]);
        assert_eq!(g.coords_of(1), vec![0, 1]);
        assert_eq!(g.coords_of(3), vec![1, 0]);
        assert_eq!(g.coords_of(5), vec![1, 2]);
    }

    #[test]
    fn layer_groups_partition_ranks() {
        let g = ProcessGrid::new(vec![2, 2, 2]);
        for mode in 0..3 {
            // groups for distinct layer indices are disjoint and cover all
            let mut seen = [false; 8];
            for layer_rep in 0..8 {
                for &r in &g.layer_group(layer_rep, mode) {
                    if g.coords_of(r)[mode] == g.coords_of(layer_rep)[mode] {
                        seen[r] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "mode {mode}");
        }
    }

    #[test]
    fn layer_group_size_is_nprocs_over_extent() {
        let g = ProcessGrid::new(vec![2, 4, 1]);
        assert_eq!(g.layer_group(0, 0).len(), 4); // 8 / 2
        assert_eq!(g.layer_group(0, 1).len(), 2); // 8 / 4
        assert_eq!(g.layer_group(0, 2).len(), 8); // 8 / 1
    }

    #[test]
    fn layer_group_contains_self_and_is_sorted() {
        let g = ProcessGrid::new(vec![3, 2]);
        for r in 0..6 {
            for mode in 0..2 {
                let grp = g.layer_group(r, mode);
                assert!(grp.contains(&r));
                assert!(grp.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn ranks_with_coord_enumerates_a_replica_set() {
        // A [3 shards, 2 replicas] serving grid: worker = shard * 2 + replica.
        let g = ProcessGrid::new(vec![3, 2]);
        assert_eq!(g.ranks_with_coord(0, 0), vec![0, 1]);
        assert_eq!(g.ranks_with_coord(0, 2), vec![4, 5]);
        assert_eq!(g.ranks_with_coord(1, 1), vec![1, 3, 5]);
        // Consistent with the member-rank addressing.
        for r in 0..6 {
            let c = g.coords_of(r);
            assert_eq!(g.layer_group(r, 0), g.ranks_with_coord(0, c[0]));
        }
    }

    #[test]
    fn single_grid_has_one_rank() {
        let g = ProcessGrid::single(3);
        assert_eq!(g.nprocs(), 1);
        assert_eq!(g.layer_group(0, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = ProcessGrid::new(vec![2, 0]);
    }
}
