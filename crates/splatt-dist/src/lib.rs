//! Simulated distributed-memory CP-ALS (the paper's second future-work
//! item).
//!
//! The Chapel-port paper closes with: *"We also plan to incorporate
//! SPLATT's novel distributed-memory features [Smith & Karypis, IPDPS
//! 2016] for tensor decomposition in our code, leveraging Chapel's
//! multi-locales."* That reference is the **medium-grained algorithm**: a
//! process grid `p1 x p2 x ... x pN` partitions the tensor into blocks;
//! each process runs local MTTKRPs on its block and exchanges factor rows
//! only within grid *layers* (processes sharing an index range).
//!
//! No cluster is available in this environment, so the locales are
//! **simulated**: ranks execute as tasks in bulk-synchronous supersteps
//! and every inter-rank exchange is routed through a [`CommStats`]
//! accountant that records the bytes a real interconnect would carry
//! (ring-allreduce / allgather cost models). The *numerics* are exactly
//! the medium-grained algorithm — each rank only ever reads factor rows
//! its block references and only writes rows it owns — so convergence
//! matches the shared-memory solver, and the communication volumes are
//! the quantity the distributed-tensor literature reports (grid-shape
//! experiments live in the bench suite's experiment E).

mod comm;
mod cpd;
mod dist;
mod grid;

pub use comm::CommStats;
pub use cpd::{dist_cp_als, try_dist_cp_als, DistCpalsError, DistCpalsOptions, DistCpalsOutput};
pub use dist::TensorDistribution;
pub use grid::ProcessGrid;
