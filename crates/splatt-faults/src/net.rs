//! Network-level fault plans for the serving cluster.
//!
//! [`NetFaultPlan`] adapts the deterministic [`FaultPlan`] site machinery
//! to the cluster's failure surface: the *(iteration, unit)* site
//! coordinates become *(query index, worker id)*, so a seed reproduces
//! the exact schedule of replica delays and corrupted frames across a
//! query storm, the same way it reproduces straggler/corruption sites
//! across a CP-ALS run. Worker kills are scheduled explicitly — by storm
//! progress fraction — because killing a process is not a transient
//! one-shot site but a state change the router must survive.
//!
//! The router consumes this plan from its transport layer:
//!
//! * [`NetFaultPlan::delay_before_send`] — a straggler roll; the router
//!   sleeps (deadline-clamped) before forwarding, simulating a slow
//!   replica.
//! * [`NetFaultPlan::corrupt_frame`] — a corrupt-payload roll; the
//!   router flips the response frame's status byte so decoding fails the
//!   way a checksum mismatch would, exercising the failover path.
//! * [`NetFaultPlan::kills_due`] — which workers the harness must kill
//!   once the storm reaches a given progress fraction.

use crate::plan::{FaultKind, FaultPlan};
use std::sync::Mutex;
use std::time::Duration;

/// One scheduled worker kill: take `worker` down once the storm has
/// dispatched `at_fraction` (in `[0, 1]`) of its queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillEvent {
    pub worker: usize,
    pub at_fraction: f64,
}

/// A deterministic fault schedule for a loopback serving cluster; see
/// the module docs.
#[derive(Debug)]
pub struct NetFaultPlan {
    plan: FaultPlan,
    kills: Vec<KillEvent>,
    dispatched: Mutex<Vec<bool>>,
}

impl NetFaultPlan {
    /// Wrap `plan`; its `straggler` rate drives replica delays and its
    /// `corrupt` rate drives frame corruption.
    pub fn new(plan: FaultPlan) -> Self {
        NetFaultPlan {
            plan,
            kills: Vec::new(),
            dispatched: Mutex::new(Vec::new()),
        }
    }

    /// Schedule `worker` to be killed at `at_fraction` of the storm.
    pub fn with_kill(mut self, worker: usize, at_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&at_fraction),
            "kill fraction outside [0, 1]"
        );
        self.kills.push(KillEvent {
            worker,
            at_fraction,
        });
        self.dispatched
            .lock()
            .expect("net plan poisoned")
            .push(false);
        self
    }

    /// The wrapped site-decision plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The full kill schedule, in insertion order.
    pub fn kills(&self) -> &[KillEvent] {
        &self.kills
    }

    /// Workers whose kill events have come due at `progress` (fraction
    /// of the storm dispatched) and were not handed out before. Each
    /// event is returned exactly once, so the harness can call this on
    /// every tick and kill precisely on schedule.
    pub fn kills_due(&self, progress: f64) -> Vec<usize> {
        let mut dispatched = self.dispatched.lock().expect("net plan poisoned");
        let mut due = Vec::new();
        for (i, kill) in self.kills.iter().enumerate() {
            if !dispatched[i] && progress >= kill.at_fraction {
                dispatched[i] = true;
                due.push(kill.worker);
            }
        }
        due
    }

    /// Whether to delay the call for `query` to `worker`, and by how
    /// much. Deterministic in the seed; one-shot per (query, worker).
    pub fn delay_before_send(&self, query: usize, worker: usize) -> Option<Duration> {
        if self.plan.roll(FaultKind::Straggler, query, worker, 0) {
            Some(Duration::from_nanos(
                self.plan.straggler_delay_nanos(query, worker),
            ))
        } else {
            None
        }
    }

    /// Whether to corrupt the response frame for `query` from `worker`;
    /// on `true` the caller flips `payload`'s status byte (high bit), so
    /// every decoder rejects the frame instead of mis-reading values —
    /// the observable behaviour of a checksum-guarded transport.
    /// Deterministic in the seed; one-shot per (query, worker).
    pub fn corrupt_frame(&self, query: usize, worker: usize, payload: &mut [u8]) -> bool {
        if payload.is_empty() || !self.plan.roll(FaultKind::CorruptPayload, query, worker, 0) {
            return false;
        }
        payload[0] ^= 0x80;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultRates;

    fn noisy() -> NetFaultPlan {
        NetFaultPlan::new(FaultPlan::new(
            42,
            FaultRates {
                straggler: 0.3,
                corrupt: 0.3,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn same_seed_reproduces_the_exact_schedule() {
        let a = noisy();
        let b = noisy();
        let mut fired = 0;
        for query in 0..200 {
            for worker in 0..6 {
                let da = a.delay_before_send(query, worker);
                let db = b.delay_before_send(query, worker);
                assert_eq!(da, db, "delay at ({query}, {worker})");
                let mut pa = vec![0u8, 1, 2];
                let mut pb = vec![0u8, 1, 2];
                let ca = a.corrupt_frame(query, worker, &mut pa);
                let cb = b.corrupt_frame(query, worker, &mut pb);
                assert_eq!(ca, cb, "corrupt at ({query}, {worker})");
                assert_eq!(pa, pb);
                fired += usize::from(da.is_some()) + usize::from(ca);
            }
        }
        assert!(fired > 0, "noisy plan injected nothing");
    }

    #[test]
    fn corruption_breaks_the_status_byte() {
        let plan = NetFaultPlan::new(FaultPlan::new(
            7,
            FaultRates {
                corrupt: 1.0,
                ..Default::default()
            },
        ));
        let mut payload = vec![0u8, 9, 9];
        assert!(plan.corrupt_frame(0, 0, &mut payload));
        assert_eq!(payload[0], 0x80, "status byte must leave the valid range");
        // One-shot: the same site never refires.
        let mut again = vec![0u8];
        assert!(!plan.corrupt_frame(0, 0, &mut again));
        assert_eq!(again, vec![0u8]);
    }

    #[test]
    fn kills_fire_once_at_their_fraction() {
        let plan = NetFaultPlan::new(FaultPlan::quiet(1))
            .with_kill(2, 0.5)
            .with_kill(4, 0.75);
        assert!(plan.kills_due(0.0).is_empty());
        assert!(plan.kills_due(0.49).is_empty());
        assert_eq!(plan.kills_due(0.5), vec![2]);
        assert!(plan.kills_due(0.6).is_empty(), "kill must not refire");
        assert_eq!(plan.kills_due(1.0), vec![4]);
        assert!(plan.kills_due(1.0).is_empty());
        assert_eq!(plan.kills().len(), 2);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = NetFaultPlan::new(FaultPlan::quiet(3));
        for query in 0..50 {
            for worker in 0..4 {
                assert!(plan.delay_before_send(query, worker).is_none());
                let mut p = vec![0u8];
                assert!(!plan.corrupt_frame(query, worker, &mut p));
            }
        }
    }
}
