//! Disk-level fault plans for the durability layer.
//!
//! [`IoFaultPlan`] brings the crate's deterministic, seed-driven fault
//! discipline to the persistence stack (`splatt-store`). Where
//! [`crate::FaultPlan`] sites are *(iteration, unit)* pairs inside a
//! solver run, durable-I/O sites are **operations**: every create,
//! write, fsync, and rename the store performs draws the next index
//! from a monotonically increasing op counter. Decisions are pure
//! hashes of `(seed, kind, op)`, so a seed replays the exact same
//! schedule of torn writes, bit flips, short reads, and fsync failures
//! across runs — and, crucially, a *crash point* can be scheduled at
//! any op boundary: run once cleanly to count the ops a workload
//! performs, then replay with `with_crash_at_op(k)` for every `k` to
//! kill the process at every instruction boundary the storage layer
//! exposes. That enumeration is what the recovery storm test sweeps.
//!
//! Fault semantics, as consumed by `splatt-store`:
//!
//! * **Torn write** — only a prefix of the buffer reaches the file,
//!   then the process "dies" ([`IoFault::Crash`]). Models a crash (or
//!   lost power) mid-`write(2)`.
//! * **Bit flip** — one deterministic bit of the outgoing buffer is
//!   inverted *before* it is written. The CRC-framed readers must
//!   surface this as a typed checksum failure, never as silently wrong
//!   data.
//! * **Short read** — a read returns only a prefix of the bytes on
//!   disk; recovery must treat the remainder as a torn tail.
//! * **Failed fsync** — `fsync` reports an error once
//!   ([`IoFault::FsyncFailed`]); the caller must *not* acknowledge the
//!   data as durable. One-shot, like every transient fault in this
//!   crate: the retry succeeds.
//! * **Crash at op `k`** — [`IoFaultPlan::next_op`] returns
//!   [`IoFault::Crash`] when the counter reaches `k`; the store
//!   abandons the operation mid-flight, leaving the file system in
//!   exactly the state a killed process would.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The disk-fault families the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// Only a prefix of a buffer reaches the file, then the process dies.
    TornWrite,
    /// One bit of an outgoing buffer is inverted before the write.
    BitFlip,
    /// A read returns only a prefix of the bytes on disk.
    ShortRead,
    /// `fsync` fails once; the data must not be acknowledged.
    FailedFsync,
    /// The scheduled process death at a fixed op index.
    Crash,
}

impl IoFaultKind {
    /// Stable label used in reports and assertion messages.
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::TornWrite => "torn-write",
            IoFaultKind::BitFlip => "bit-flip",
            IoFaultKind::ShortRead => "short-read",
            IoFaultKind::FailedFsync => "failed-fsync",
            IoFaultKind::Crash => "crash",
        }
    }

    fn tag(self) -> u64 {
        match self {
            IoFaultKind::TornWrite => 0x61,
            IoFaultKind::BitFlip => 0x62,
            IoFaultKind::ShortRead => 0x63,
            IoFaultKind::FailedFsync => 0x64,
            IoFaultKind::Crash => 0x65,
        }
    }
}

/// Per-kind injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoFaultRates {
    pub torn_write: f64,
    pub bit_flip: f64,
    pub short_read: f64,
    pub failed_fsync: f64,
}

/// A typed injected disk fault, surfaced to the store's callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoFault {
    /// The scheduled process death: the operation was abandoned
    /// mid-flight and nothing after it executed.
    Crash { op: u64, site: String },
    /// `fsync` failed; the preceding writes must not be acknowledged
    /// as durable.
    FsyncFailed { op: u64, site: String },
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::Crash { op, site } => {
                write!(f, "injected crash at io op {op} ({site})")
            }
            IoFault::FsyncFailed { op, site } => {
                write!(f, "injected fsync failure at io op {op} ({site})")
            }
        }
    }
}

impl std::error::Error for IoFault {}

/// One injected disk fault, for the plan's audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFaultRecord {
    pub kind: IoFaultKind,
    /// Op index the fault fired at.
    pub op: u64,
    /// Store-side site label, e.g. `"wal append"` or `"publish rename"`.
    pub site: String,
}

/// SplitMix64-style finalizer, same family as [`crate::FaultPlan`].
fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

fn io_hash(seed: u64, kind: IoFaultKind, op: u64) -> u64 {
    let mut h = mix(seed ^ kind.tag().wrapping_mul(0xA24B_AED4_963E_E407));
    h = mix(h ^ op.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    mix(h)
}

/// Uniform f64 in `[0, 1)` from the site hash.
fn unit_f64(h: u64) -> f64 {
    // 53 mantissa bits of the hash, scaled into [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, deterministic disk-fault plan; see the module docs.
///
/// Thread-safe: decisions are pure functions of the seed and the op
/// index; the op counter is atomic and the event log sits behind a
/// mutex. In practice the store issues ops single-threaded, which is
/// what makes a `crash_at_op` sweep cover every boundary exactly once.
#[derive(Debug)]
pub struct IoFaultPlan {
    seed: u64,
    rates: IoFaultRates,
    crash_at_op: Option<u64>,
    ops: AtomicU64,
    events: Mutex<Vec<IoFaultRecord>>,
}

impl IoFaultPlan {
    /// A plan firing each kind independently at its configured rate.
    pub fn new(seed: u64, rates: IoFaultRates) -> Self {
        IoFaultPlan {
            seed,
            rates,
            crash_at_op: None,
            ops: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A plan that injects nothing — useful to count the ops a workload
    /// performs before sweeping crash points over `0..ops_seen()`.
    pub fn quiet(seed: u64) -> Self {
        Self::new(seed, IoFaultRates::default())
    }

    /// Schedule a process death at op index `op` (0-based).
    pub fn with_crash_at_op(mut self, op: u64) -> Self {
        self.crash_at_op = Some(op);
        self
    }

    /// The seed every decision derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configured rates.
    pub fn rates(&self) -> IoFaultRates {
        self.rates
    }

    /// The scheduled crash op, if any.
    pub fn crash_at_op(&self) -> Option<u64> {
        self.crash_at_op
    }

    /// Ops drawn so far. After a quiet run this is the total number of
    /// crash boundaries the workload exposes.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Draw the next op index for a durable-I/O step, or die there.
    ///
    /// # Errors
    /// [`IoFault::Crash`] when the counter reaches the scheduled crash
    /// op; the caller must abandon the operation mid-flight.
    pub fn next_op(&self, site: &str) -> Result<u64, IoFault> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if self.crash_at_op == Some(op) {
            self.record(IoFaultKind::Crash, op, site);
            return Err(IoFault::Crash {
                op,
                site: site.to_string(),
            });
        }
        Ok(op)
    }

    fn roll(&self, kind: IoFaultKind, op: u64, rate: f64) -> bool {
        rate > 0.0 && unit_f64(io_hash(self.seed, kind, op)) < rate
    }

    /// Whether the buffer write at `op` is torn, and how many of `len`
    /// bytes actually reach the file (strictly fewer than `len`; the
    /// caller then reports [`IoFault::Crash`]). Always `None` for empty
    /// buffers.
    pub fn torn_write_len(&self, op: u64, site: &str, len: usize) -> Option<usize> {
        if len == 0 || !self.roll(IoFaultKind::TornWrite, op, self.rates.torn_write) {
            return None;
        }
        self.record(IoFaultKind::TornWrite, op, site);
        Some((io_hash(self.seed ^ 0x7EA4, IoFaultKind::TornWrite, op) % len as u64) as usize)
    }

    /// Invert one deterministic bit of `bytes` before they are written;
    /// returns whether a flip happened. CRC-framed readers must turn
    /// this into a typed checksum failure.
    pub fn flip_bit(&self, op: u64, site: &str, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() || !self.roll(IoFaultKind::BitFlip, op, self.rates.bit_flip) {
            return false;
        }
        let h = io_hash(self.seed ^ 0xF11B, IoFaultKind::BitFlip, op);
        let idx = (h % bytes.len() as u64) as usize;
        bytes[idx] ^= 1 << ((h >> 32) % 8);
        self.record(IoFaultKind::BitFlip, op, site);
        true
    }

    /// Whether the read at `op` comes up short, and how many of `len`
    /// bytes it actually returns (strictly fewer than `len`).
    pub fn short_read_len(&self, op: u64, site: &str, len: usize) -> Option<usize> {
        if len == 0 || !self.roll(IoFaultKind::ShortRead, op, self.rates.short_read) {
            return None;
        }
        self.record(IoFaultKind::ShortRead, op, site);
        Some((io_hash(self.seed ^ 0x5042, IoFaultKind::ShortRead, op) % len as u64) as usize)
    }

    /// Whether the fsync at `op` fails. The caller surfaces
    /// [`IoFault::FsyncFailed`] and must not acknowledge the data.
    pub fn fsync_fails(&self, op: u64, site: &str) -> bool {
        if !self.roll(IoFaultKind::FailedFsync, op, self.rates.failed_fsync) {
            return false;
        }
        self.record(IoFaultKind::FailedFsync, op, site);
        true
    }

    fn record(&self, kind: IoFaultKind, op: u64, site: &str) {
        self.events
            .lock()
            .expect("io plan poisoned")
            .push(IoFaultRecord {
                kind,
                op,
                site: site.to_string(),
            });
    }

    /// Snapshot of every recorded event, in injection order.
    pub fn events(&self) -> Vec<IoFaultRecord> {
        self.events.lock().expect("io plan poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy() -> IoFaultPlan {
        IoFaultPlan::new(
            42,
            IoFaultRates {
                torn_write: 0.3,
                bit_flip: 0.3,
                short_read: 0.3,
                failed_fsync: 0.3,
            },
        )
    }

    #[test]
    fn decisions_are_deterministic_across_plans() {
        let a = noisy();
        let b = noisy();
        let mut fired = 0usize;
        for op in 0..500 {
            assert_eq!(
                a.torn_write_len(op, "t", 100),
                b.torn_write_len(op, "t", 100)
            );
            assert_eq!(
                a.short_read_len(op, "t", 100),
                b.short_read_len(op, "t", 100)
            );
            assert_eq!(a.fsync_fails(op, "t"), b.fsync_fails(op, "t"));
            let mut pa = vec![0xAAu8; 16];
            let mut pb = vec![0xAAu8; 16];
            let fa = a.flip_bit(op, "t", &mut pa);
            assert_eq!(fa, b.flip_bit(op, "t", &mut pb));
            assert_eq!(pa, pb);
            fired += usize::from(fa) + usize::from(a.fsync_fails(op, "t"));
            if let Some(k) = a.torn_write_len(op, "t", 100) {
                assert!(k < 100, "torn prefix must be strictly short");
                fired += 1;
            }
        }
        assert!(fired > 0, "noisy plan injected nothing");
    }

    #[test]
    fn crash_fires_exactly_at_the_scheduled_op() {
        let plan = IoFaultPlan::quiet(1).with_crash_at_op(3);
        assert_eq!(plan.next_op("a").unwrap(), 0);
        assert_eq!(plan.next_op("b").unwrap(), 1);
        assert_eq!(plan.next_op("c").unwrap(), 2);
        let err = plan.next_op("d").unwrap_err();
        assert!(matches!(err, IoFault::Crash { op: 3, .. }), "{err:?}");
        // the counter keeps advancing: a crash is terminal for the store
        // run, but the plan itself stays usable for postmortems
        assert_eq!(plan.next_op("e").unwrap(), 4);
        assert_eq!(plan.events().len(), 1);
        assert_eq!(plan.events()[0].kind, IoFaultKind::Crash);
    }

    #[test]
    fn quiet_plan_counts_ops_and_injects_nothing() {
        let plan = IoFaultPlan::quiet(9);
        for _ in 0..10 {
            let op = plan.next_op("step").unwrap();
            assert!(plan.torn_write_len(op, "s", 64).is_none());
            assert!(plan.short_read_len(op, "s", 64).is_none());
            assert!(!plan.fsync_fails(op, "s"));
            let mut b = vec![1u8, 2, 3];
            assert!(!plan.flip_bit(op, "s", &mut b));
            assert_eq!(b, vec![1, 2, 3]);
        }
        assert_eq!(plan.ops_seen(), 10);
        assert!(plan.events().is_empty());
    }

    #[test]
    fn flip_changes_exactly_one_bit() {
        let plan = IoFaultPlan::new(
            7,
            IoFaultRates {
                bit_flip: 1.0,
                ..Default::default()
            },
        );
        let original = vec![0x55u8; 32];
        let mut flipped = original.clone();
        assert!(plan.flip_bit(0, "s", &mut flipped));
        let differing: u32 = original
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1, "exactly one bit must differ");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = IoFaultPlan::new(
            11,
            IoFaultRates {
                failed_fsync: 0.25,
                ..Default::default()
            },
        );
        let fired = (0..4000).filter(|&op| plan.fsync_fails(op, "s")).count();
        let frac = fired as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "observed rate {frac}");
    }

    #[test]
    fn empty_buffers_are_never_faulted() {
        let plan = IoFaultPlan::new(
            3,
            IoFaultRates {
                torn_write: 1.0,
                bit_flip: 1.0,
                short_read: 1.0,
                ..Default::default()
            },
        );
        assert!(plan.torn_write_len(0, "s", 0).is_none());
        assert!(plan.short_read_len(0, "s", 0).is_none());
        let mut empty: Vec<u8> = Vec::new();
        assert!(!plan.flip_bit(0, "s", &mut empty));
    }
}
