//! Deterministic fault injection and recovery bookkeeping for splatt-rs.
//!
//! The paper's CP-ALS stack assumes every sort, MTTKRP, and solve
//! succeeds and every simulated rank answers. Production deployments
//! (and the distributed-runtime follow-on work the ROADMAP targets)
//! cannot: ranks straggle, collectives drop or corrupt payloads,
//! accumulators take bit flips, and degenerate inputs make the normal
//! equations indefinite. This crate supplies the two halves such a
//! system needs:
//!
//! * **Causing failures** — [`FaultPlan`]: a seed-driven, *stateless*
//!   fault schedule. Every decision is a pure hash of
//!   `(seed, kind, iteration, unit, attempt)`, so plans replay
//!   identically across runs and across checkpoint/restart boundaries.
//!   Sites are one-shot (transient-fault model), which is what makes
//!   retry/rollback recovery converge.
//! * **Bounding recovery** — [`RecoveryPolicy`]: retry counts,
//!   exponential backoff, escalating Tikhonov ridges, and rollback
//!   budgets; [`RecoveryAction`] / [`FaultRecord`] are the typed audit
//!   trail that flows into `splatt-probe`'s JSON report.
//!
//! The solver crates (`splatt-core`, `splatt-dist`, `splatt-dense`)
//! consume these types; this crate depends only on `splatt-rt`-level
//! facilities and the standard library, so it sits at the bottom of the
//! workspace graph next to the RNG it mirrors.

mod io;
mod net;
mod plan;
mod recovery;

pub use io::{IoFault, IoFaultKind, IoFaultPlan, IoFaultRates, IoFaultRecord};
pub use net::{KillEvent, NetFaultPlan};
pub use plan::{FaultKind, FaultPlan, FaultPlanParseError, FaultRates, FaultRecord};
pub use recovery::{RecoveryAction, RecoveryPolicy};
