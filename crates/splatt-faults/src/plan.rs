//! The deterministic fault plan.
//!
//! A [`FaultPlan`] decides, for every *site* the solver stack exposes,
//! whether a fault fires there. Decisions are **stateless**: each is a
//! pure hash of `(seed, kind, iteration, unit, attempt)` compared against
//! the kind's configured rate. That makes plans reproducible across runs
//! and — crucially — across checkpoint/restart boundaries: a resumed run
//! re-derives exactly the faults the uninterrupted run would have seen
//! from the resume iteration onward, with no RNG stream to rewind.
//!
//! Faults are *one-shot* per site (a fired site is remembered and never
//! refires), which models transient failures: a retried collective or a
//! rolled-back iteration re-executes cleanly, the way a real retransmit
//! or recompute would succeed after a transient network or bit-flip
//! event.

use crate::recovery::RecoveryAction;
use splatt_rt::rng::{RngExt, SeedableRng, StdRng};
use std::collections::HashSet;
use std::sync::Mutex;

/// The fault families the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A slow rank/task: an injected delay before a kernel or collective.
    Straggler,
    /// A collective "loses" its payload and must be retried.
    DroppedCollective,
    /// A collective delivers corrupted bytes (caught by checksum) and
    /// must be retransmitted.
    CorruptPayload,
    /// A kernel output value is poisoned to NaN (models a bit flip in
    /// the significand/exponent of an accumulator).
    NanPoison,
    /// The Gram-matrix Hadamard product is perturbed to be indefinite,
    /// breaking the Cholesky fast path.
    NonSpdGram,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Straggler,
        FaultKind::DroppedCollective,
        FaultKind::CorruptPayload,
        FaultKind::NanPoison,
        FaultKind::NonSpdGram,
    ];

    /// Stable label used in reports, specs, and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Straggler => "straggler",
            FaultKind::DroppedCollective => "dropped-collective",
            FaultKind::CorruptPayload => "corrupt-payload",
            FaultKind::NanPoison => "nan-poison",
            FaultKind::NonSpdGram => "non-spd-gram",
        }
    }

    fn tag(self) -> u64 {
        match self {
            FaultKind::Straggler => 0x51,
            FaultKind::DroppedCollective => 0x52,
            FaultKind::CorruptPayload => 0x53,
            FaultKind::NanPoison => 0x54,
            FaultKind::NonSpdGram => 0x55,
        }
    }
}

/// Per-kind injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    pub straggler: f64,
    pub dropped: f64,
    pub corrupt: f64,
    pub nan: f64,
    pub nonspd: f64,
}

impl FaultRates {
    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Straggler => self.straggler,
            FaultKind::DroppedCollective => self.dropped,
            FaultKind::CorruptPayload => self.corrupt,
            FaultKind::NanPoison => self.nan,
            FaultKind::NonSpdGram => self.nonspd,
        }
    }
}

/// One injected fault and how (or whether) the stack recovered from it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRecord {
    pub kind: FaultKind,
    /// ALS iteration the fault fired in.
    pub iteration: usize,
    /// Human-readable site, e.g. `"mode 1 / mttkrp"` or
    /// `"mode 0 / layer allreduce"`.
    pub site: String,
    pub action: RecoveryAction,
}

/// A seeded, deterministic fault-injection plan.
///
/// Thread-safe: decisions are pure functions of the seed, and the
/// one-shot set and event log sit behind mutexes.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
    /// Faults only fire in iterations `< horizon` (`usize::MAX` = always).
    horizon: usize,
    /// Multiplier on straggler delays (default 1: 100 µs – 1 ms). The
    /// governance tests scale delays up into watchdog territory without
    /// changing which sites fire.
    straggler_scale: u64,
    fired: Mutex<HashSet<(u64, u64, u64, u64)>>,
    events: Mutex<Vec<FaultRecord>>,
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError(pub String);

impl std::fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultPlanParseError {}

/// SplitMix64-style finalizer over a combined word stream.
fn mix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

fn site_hash(seed: u64, kind: FaultKind, iteration: u64, unit: u64, attempt: u64) -> u64 {
    let mut h = mix(seed ^ kind.tag().wrapping_mul(0xA24B_AED4_963E_E407));
    h = mix(h ^ iteration.wrapping_mul(0x9FB2_1C65_1E98_DF25));
    h = mix(h ^ unit.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    mix(h ^ attempt.wrapping_mul(0xCA5A_8268_85B3_F57B))
}

/// Uniform f64 in `[0, 1)` from one xoshiro256** draw seeded by the site
/// hash — the same generator family as the rest of the workspace.
fn unit_f64(h: u64) -> f64 {
    StdRng::seed_from_u64(h).random()
}

impl FaultPlan {
    /// A plan firing each kind independently at its configured rate.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan {
            seed,
            rates,
            horizon: usize::MAX,
            straggler_scale: 1,
            fired: Mutex::new(HashSet::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A plan that injects nothing (useful as a control arm).
    pub fn quiet(seed: u64) -> Self {
        Self::new(seed, FaultRates::default())
    }

    /// Restrict injection to iterations `< horizon`. Letting the tail of
    /// a run execute fault-free is how the recovery tests separate
    /// "transient degradation" from "converged result".
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }

    /// Multiply straggler delays by `scale` (min 1). Which sites fire is
    /// unchanged — only how long each absorbed delay lasts.
    pub fn with_straggler_scale(mut self, scale: u64) -> Self {
        self.straggler_scale = scale.max(1);
        self
    }

    /// The seed this plan derives every decision from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The straggler-delay multiplier.
    pub fn straggler_scale(&self) -> u64 {
        self.straggler_scale
    }

    /// Configured rates.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Parse a plan from a `key=value` comma list, e.g.
    /// `seed=42,straggler=0.5,drop=0.25,corrupt=0.25,nan=0.2,nonspd=0.2,horizon=5`.
    /// Unknown keys are rejected; all keys are optional (`seed` defaults
    /// to 0, rates to 0, `horizon` to unlimited).
    ///
    /// # Errors
    /// [`FaultPlanParseError`] on unknown keys, malformed numbers, or
    /// rates outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, FaultPlanParseError> {
        let mut seed = 0u64;
        let mut rates = FaultRates::default();
        let mut horizon = usize::MAX;
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultPlanParseError(format!("expected key=value, got '{part}'")))?;
            let key = key.trim();
            let value = value.trim();
            let parse_rate = || -> Result<f64, FaultPlanParseError> {
                let r: f64 = value
                    .parse()
                    .map_err(|_| FaultPlanParseError(format!("bad number '{value}' for {key}")))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(FaultPlanParseError(format!(
                        "rate {key}={r} outside [0, 1]"
                    )));
                }
                Ok(r)
            };
            match key {
                "seed" => {
                    seed = value.parse().map_err(|_| {
                        FaultPlanParseError(format!("bad integer '{value}' for seed"))
                    })?;
                }
                "horizon" => {
                    horizon = value.parse().map_err(|_| {
                        FaultPlanParseError(format!("bad integer '{value}' for horizon"))
                    })?;
                }
                "straggler" => rates.straggler = parse_rate()?,
                "drop" => rates.dropped = parse_rate()?,
                "corrupt" => rates.corrupt = parse_rate()?,
                "nan" => rates.nan = parse_rate()?,
                "nonspd" => rates.nonspd = parse_rate()?,
                other => {
                    return Err(FaultPlanParseError(format!(
                    "unknown key '{other}' (seed, horizon, straggler, drop, corrupt, nan, nonspd)"
                )))
                }
            }
        }
        Ok(FaultPlan::new(seed, rates).with_horizon(horizon))
    }

    /// Decide whether `kind` fires at `(iteration, unit, attempt)`.
    /// Deterministic in the plan's seed; one-shot per site — the first
    /// `true` for a site is also its last.
    pub fn roll(&self, kind: FaultKind, iteration: usize, unit: usize, attempt: u32) -> bool {
        if iteration >= self.horizon {
            return false;
        }
        let rate = self.rates.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let h = site_hash(
            self.seed,
            kind,
            iteration as u64,
            unit as u64,
            attempt as u64,
        );
        if unit_f64(h) >= rate {
            return false;
        }
        let key = (kind.tag(), iteration as u64, unit as u64, attempt as u64);
        self.fired.lock().expect("fault plan poisoned").insert(key)
    }

    /// A deterministic per-site straggler delay in nanoseconds
    /// (100 µs – 1 ms at the default scale), derived from the same hash
    /// stream and multiplied by the straggler scale.
    pub fn straggler_delay_nanos(&self, iteration: usize, unit: usize) -> u64 {
        let h = site_hash(
            self.seed ^ 0xDE1A_F00D,
            FaultKind::Straggler,
            iteration as u64,
            unit as u64,
            0,
        );
        (100_000 + h % 900_000).saturating_mul(self.straggler_scale)
    }

    /// A deterministic index used to pick which payload element gets
    /// poisoned/corrupted at a site.
    pub fn target_index(
        &self,
        kind: FaultKind,
        iteration: usize,
        unit: usize,
        len: usize,
    ) -> usize {
        if len == 0 {
            return 0;
        }
        (site_hash(
            self.seed ^ 0x1D10_7BAD,
            kind,
            iteration as u64,
            unit as u64,
            1,
        ) % len as u64) as usize
    }

    /// Append a fault/recovery record to the plan's event log.
    pub fn record(&self, record: FaultRecord) {
        self.events
            .lock()
            .expect("fault plan poisoned")
            .push(record);
    }

    /// Snapshot of every recorded event, in injection order.
    pub fn events(&self) -> Vec<FaultRecord> {
        self.events.lock().expect("fault plan poisoned").clone()
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        self.events.lock().expect("fault plan poisoned").len()
    }

    /// True if any recorded event went unrecovered.
    pub fn any_unrecovered(&self) -> bool {
        self.events
            .lock()
            .expect("fault plan poisoned")
            .iter()
            .any(|e| matches!(e.action, RecoveryAction::Unrecovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy() -> FaultPlan {
        FaultPlan::new(
            7,
            FaultRates {
                straggler: 0.5,
                dropped: 0.5,
                corrupt: 0.5,
                nan: 0.5,
                nonspd: 0.5,
            },
        )
    }

    #[test]
    fn decisions_are_deterministic_across_plans() {
        let a = noisy();
        let b = noisy();
        for it in 0..20 {
            for unit in 0..4 {
                for kind in FaultKind::ALL {
                    assert_eq!(a.roll(kind, it, unit, 0), b.roll(kind, it, unit, 0));
                }
            }
        }
    }

    #[test]
    fn fired_sites_do_not_refire() {
        let p = FaultPlan::new(
            1,
            FaultRates {
                nan: 1.0,
                ..Default::default()
            },
        );
        assert!(p.roll(FaultKind::NanPoison, 3, 1, 0));
        assert!(!p.roll(FaultKind::NanPoison, 3, 1, 0), "site refired");
        assert!(p.roll(FaultKind::NanPoison, 3, 2, 0), "other site blocked");
    }

    #[test]
    fn horizon_suppresses_late_faults() {
        let p = FaultPlan::new(
            1,
            FaultRates {
                nan: 1.0,
                ..Default::default()
            },
        )
        .with_horizon(5);
        assert!(p.roll(FaultKind::NanPoison, 4, 0, 0));
        assert!(!p.roll(FaultKind::NanPoison, 5, 0, 0));
        assert!(!p.roll(FaultKind::NanPoison, 100, 0, 0));
    }

    #[test]
    fn zero_rates_never_fire() {
        let p = FaultPlan::quiet(9);
        for it in 0..50 {
            for kind in FaultKind::ALL {
                assert!(!p.roll(kind, it, 0, 0));
            }
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::new(
            11,
            FaultRates {
                straggler: 0.25,
                ..Default::default()
            },
        );
        let fired = (0..4000)
            .filter(|&i| p.roll(FaultKind::Straggler, i, 0, 0))
            .count();
        let frac = fired as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "observed rate {frac}");
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=42, straggler=0.5,drop=0.25,corrupt=0.1,nan=0.2,nonspd=0.3,horizon=5",
        )
        .unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(p.rates().straggler, 0.5);
        assert_eq!(p.rates().dropped, 0.25);
        assert_eq!(p.rates().corrupt, 0.1);
        assert_eq!(p.rates().nan, 0.2);
        assert_eq!(p.rates().nonspd, 0.3);
        assert!(!p.roll(FaultKind::NanPoison, 7, 0, 0), "horizon ignored");
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("straggler=1.5").is_err());
        assert!(FaultPlan::parse("straggler=-0.1").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("straggler").is_err());
    }

    #[test]
    fn parse_empty_spec_is_quiet() {
        let p = FaultPlan::parse("").unwrap();
        assert_eq!(p.rates(), FaultRates::default());
    }

    #[test]
    fn event_log_round_trips() {
        let p = FaultPlan::quiet(0);
        p.record(FaultRecord {
            kind: FaultKind::Straggler,
            iteration: 2,
            site: "mode 0".into(),
            action: RecoveryAction::AbsorbedDelay { nanos: 123 },
        });
        let events = p.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::Straggler);
        assert!(!p.any_unrecovered());
        p.record(FaultRecord {
            kind: FaultKind::DroppedCollective,
            iteration: 3,
            site: "norms".into(),
            action: RecoveryAction::Unrecovered,
        });
        assert!(p.any_unrecovered());
        assert_eq!(p.event_count(), 2);
    }

    #[test]
    fn delays_and_targets_are_deterministic_and_bounded() {
        let a = noisy();
        let b = noisy();
        for it in 0..10 {
            let d = a.straggler_delay_nanos(it, 1);
            assert_eq!(d, b.straggler_delay_nanos(it, 1));
            assert!((100_000..1_000_000).contains(&d), "delay {d}");
            let t = a.target_index(FaultKind::NanPoison, it, 0, 37);
            assert_eq!(t, b.target_index(FaultKind::NanPoison, it, 0, 37));
            assert!(t < 37);
        }
        assert_eq!(a.target_index(FaultKind::NanPoison, 0, 0, 0), 0);
    }

    #[test]
    fn straggler_scale_multiplies_delays_without_changing_decisions() {
        let base = noisy();
        let scaled = noisy().with_straggler_scale(100);
        assert_eq!(scaled.straggler_scale(), 100);
        for it in 0..10 {
            assert_eq!(
                scaled.straggler_delay_nanos(it, 1),
                100 * base.straggler_delay_nanos(it, 1)
            );
            for kind in FaultKind::ALL {
                assert_eq!(base.roll(kind, it, 1, 0), scaled.roll(kind, it, 1, 0));
            }
        }
        // scale 0 clamps to 1 rather than zeroing every delay
        assert_eq!(noisy().with_straggler_scale(0).straggler_scale(), 1);
    }
}
