//! Recovery policies and the typed record of what a recovery did.

use std::time::Duration;

/// How the stack responded to one injected (or organic) fault.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// A straggler's delay was simply waited out.
    AbsorbedDelay { nanos: u64 },
    /// A dropped collective was retried with exponential backoff.
    Retried { attempts: u32, backoff_nanos: u64 },
    /// A corrupted payload was detected (checksum) and retransmitted.
    Retransmitted { bytes: u64 },
    /// A non-SPD normal-equations matrix was solved through an escalating
    /// Tikhonov ridge.
    Regularized { ridge: f64, attempts: u32 },
    /// Non-finite state was detected and the iteration was rolled back to
    /// the last good snapshot.
    RolledBack { to_iteration: usize },
    /// Recovery was exhausted (bounded retries/rollbacks ran out).
    Unrecovered,
}

impl RecoveryAction {
    /// Stable label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryAction::AbsorbedDelay { .. } => "absorbed-delay",
            RecoveryAction::Retried { .. } => "retried",
            RecoveryAction::Retransmitted { .. } => "retransmitted",
            RecoveryAction::Regularized { .. } => "regularized",
            RecoveryAction::RolledBack { .. } => "rolled-back",
            RecoveryAction::Unrecovered => "unrecovered",
        }
    }

    /// One-line human rendering, e.g. `retried (2 attempts, 3.0us backoff)`.
    pub fn describe(&self) -> String {
        match self {
            RecoveryAction::AbsorbedDelay { nanos } => {
                format!("absorbed-delay ({:.1}us)", *nanos as f64 / 1e3)
            }
            RecoveryAction::Retried {
                attempts,
                backoff_nanos,
            } => format!(
                "retried ({attempts} attempt(s), {:.1}us backoff)",
                *backoff_nanos as f64 / 1e3
            ),
            RecoveryAction::Retransmitted { bytes } => format!("retransmitted ({bytes} B)"),
            RecoveryAction::Regularized { ridge, attempts } => {
                format!("regularized (ridge {ridge:.3e}, {attempts} attempt(s))")
            }
            RecoveryAction::RolledBack { to_iteration } => {
                format!("rolled-back (to iteration {to_iteration})")
            }
            RecoveryAction::Unrecovered => "unrecovered".to_string(),
        }
    }
}

/// Bounds on every recovery mechanism. `Copy` so it can ride inside
/// `Copy` option structs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum retries for a failed collective before giving up.
    pub max_retries: u32,
    /// Base backoff; attempt `k` waits `backoff_base * 2^(k-1)`.
    pub backoff_base_nanos: u64,
    /// First Tikhonov ridge, relative to the mean Gram diagonal.
    pub ridge_base: f64,
    /// Multiplicative ridge escalation per failed factorization.
    pub ridge_growth: f64,
    /// Maximum ridge escalations before declaring the solve unrecoverable.
    pub max_ridge_attempts: u32,
    /// Maximum iteration rollbacks per run before accepting degradation.
    pub max_rollbacks: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 4,
            backoff_base_nanos: 1_000,
            ridge_base: 1e-8,
            ridge_growth: 100.0,
            max_ridge_attempts: 10,
            max_rollbacks: 16,
        }
    }
}

impl RecoveryPolicy {
    /// Total backoff accrued by `attempts` retries (exponential, capped
    /// to avoid overflow on adversarial policies).
    pub fn total_backoff_nanos(&self, attempts: u32) -> u64 {
        let mut total = 0u64;
        for k in 0..attempts {
            let factor = 1u64 << k.min(20);
            total = total.saturating_add(self.backoff_base_nanos.saturating_mul(factor));
        }
        total
    }

    /// The backoff for one attempt as a sleepable duration, capped at 1 ms
    /// so adversarial plans cannot stall tests.
    pub fn backoff_duration(&self, attempt: u32) -> Duration {
        let nanos = self
            .backoff_base_nanos
            .saturating_mul(1u64 << attempt.min(20))
            .min(1_000_000);
        Duration::from_nanos(nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RecoveryPolicy {
            backoff_base_nanos: 100,
            ..Default::default()
        };
        assert_eq!(p.total_backoff_nanos(0), 0);
        assert_eq!(p.total_backoff_nanos(1), 100);
        assert_eq!(p.total_backoff_nanos(3), 100 + 200 + 400);
        assert!(p.backoff_duration(63) <= Duration::from_millis(1));
    }

    #[test]
    fn actions_describe_themselves() {
        let actions = [
            RecoveryAction::AbsorbedDelay { nanos: 5_000 },
            RecoveryAction::Retried {
                attempts: 2,
                backoff_nanos: 3_000,
            },
            RecoveryAction::Retransmitted { bytes: 64 },
            RecoveryAction::Regularized {
                ridge: 1e-6,
                attempts: 3,
            },
            RecoveryAction::RolledBack { to_iteration: 4 },
            RecoveryAction::Unrecovered,
        ];
        for a in &actions {
            assert!(a.describe().contains(a.label().split(' ').next().unwrap()));
        }
        assert_eq!(RecoveryAction::Unrecovered.label(), "unrecovered");
    }

    #[test]
    fn default_policy_is_bounded() {
        let p = RecoveryPolicy::default();
        assert!(p.max_retries > 0);
        assert!(p.max_ridge_attempts > 0);
        assert!(p.ridge_growth > 1.0);
    }
}
