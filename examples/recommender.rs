//! Recommender-style tensor completion (the NETFLIX use case).
//!
//! The paper's Table I includes the Netflix prize tensor
//! (user x movie x time); the natural task on such data is *completion* —
//! predicting ratings for (user, movie, time) cells that were never
//! observed — which SPLATT supports as "CP with missing values". This
//! example synthesizes a Netflix-shaped ratings tensor from a planted
//! low-rank preference model, hides 20 % of the observations, fits
//! [`splatt::core::tensor_complete`], and reports held-out RMSE against
//! baselines.
//! Overfactoring shows up as a widening train/test RMSE gap.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use splatt::core::{rmse_observed, tensor_complete, CompletionOptions};
use splatt::rt::rng::StdRng;
use splatt::rt::rng::{RngExt, SeedableRng};
use splatt::SparseTensor;

const USERS: usize = 1_200;
const MOVIES: usize = 500;
const WEEKS: usize = 26;
const TRUE_RANK: usize = 4;
const OBSERVATIONS: usize = 60_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Planted preference model: user/movie/time loadings in [0, 1];
    // ratings are the trilinear product rescaled into roughly 1..5 stars
    // with observation noise.
    let loadings = |n: usize, rng: &mut StdRng| -> Vec<f64> {
        (0..n * TRUE_RANK).map(|_| rng.random::<f64>()).collect()
    };
    let (u, m, w) = (
        loadings(USERS, &mut rng),
        loadings(MOVIES, &mut rng),
        loadings(WEEKS, &mut rng),
    );
    let rating = |i: usize, j: usize, k: usize, rng: &mut StdRng| -> f64 {
        let score: f64 = (0..TRUE_RANK)
            .map(|r| u[i * TRUE_RANK + r] * m[j * TRUE_RANK + r] * w[k * TRUE_RANK + r])
            .sum();
        1.0 + 4.0 * score / TRUE_RANK as f64 + 0.1 * (rng.random::<f64>() - 0.5)
    };

    // Sample distinct observed cells, then split train/test 80/20.
    let mut seen = std::collections::HashSet::new();
    let mut train = SparseTensor::new(vec![USERS, MOVIES, WEEKS]);
    let mut test = SparseTensor::new(vec![USERS, MOVIES, WEEKS]);
    while seen.len() < OBSERVATIONS {
        let i = rng.random_range(0..USERS);
        let j = rng.random_range(0..MOVIES);
        let k = rng.random_range(0..WEEKS);
        if !seen.insert((i, j, k)) {
            continue;
        }
        let v = rating(i, j, k, &mut rng);
        let coord = [i as u32, j as u32, k as u32];
        if seen.len() % 5 == 0 {
            test.push(&coord, v);
        } else {
            train.push(&coord, v);
        }
    }
    println!(
        "ratings tensor: {} train / {} test observations over {USERS}x{MOVIES}x{WEEKS}",
        train.nnz(),
        test.nnz()
    );

    // Baseline: predict the global mean rating.
    let mean: f64 = train.vals().iter().sum::<f64>() / train.nnz() as f64;
    let base_rmse = (test
        .vals()
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / test.nnz() as f64)
        .sqrt();
    println!("baseline (global mean {mean:.2}): test RMSE {base_rmse:.4}");

    // Completion at a few ranks; the train/test gap reveals overfitting.
    println!(
        "\n{:>4}  {:>10}  {:>10}  {:>9}",
        "rank", "train RMSE", "test RMSE", "gap"
    );
    let mut best: Option<(usize, f64)> = None;
    for rank in [1, 2, 4, 8] {
        let opts = CompletionOptions {
            rank,
            max_iters: 30,
            tolerance: 1e-5,
            regularization: 0.05,
            ntasks: 4,
            ..Default::default()
        };
        let out = tensor_complete(&train, &opts);
        let test_rmse = rmse_observed(&out.model, &test);
        let gap = test_rmse / out.rmse;
        println!(
            "{rank:>4}  {:>10.4}  {test_rmse:>10.4}  {gap:>8.2}x",
            out.rmse
        );
        if best.is_none() || test_rmse < best.unwrap().1 {
            best = Some((rank, test_rmse));
        }
    }

    let (rank, rmse) = best.unwrap();
    println!(
        "\nbest held-out RMSE {rmse:.4} at rank {rank} \
         ({}x better than the mean baseline)",
        (base_rmse / rmse * 10.0).round() / 10.0
    );
    assert!(rmse < base_rmse, "completion must beat the mean baseline");
}
