//! Strategy tuning: measure the paper's optimization knobs on your tensor.
//!
//! Runs the MTTKRP under every matrix-access strategy (Figures 2/3) and
//! every lock strategy (Figure 4), plus the three bundled implementation
//! presets (Table III / Figures 9-10), and prints a comparison — the
//! workflow a user would follow to pick a configuration for a new data
//! set.
//!
//! ```sh
//! cargo run --release --example strategy_tuning [ntasks]
//! ```

use splatt::core::mttkrp::{mttkrp, uses_locks, MttkrpConfig, MttkrpWorkspace};
use splatt::par::TaskTeam;
use splatt::{
    cp_als, CpalsOptions, CsfSet, Implementation, LockStrategy, Matrix, MatrixAccess, SortVariant,
};
use std::time::Instant;

const RANK: usize = 16;
const REPS: usize = 10;

fn main() {
    let ntasks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // YELP-shaped: sparse modes force the lock path at higher task counts.
    let tensor = splatt::tensor::synth::YELP.generate(1.0 / 80.0, 3);
    println!("tensor: {}", splatt::tensor::TensorStats::compute(&tensor));
    println!("tasks:  {ntasks}\n");

    let team = TaskTeam::new(ntasks);
    let set = CsfSet::build(&tensor, Default::default(), &team, SortVariant::AllOpts);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, RANK, m as u64))
        .collect();

    let time_mttkrp = |cfg: &MttkrpConfig| -> f64 {
        let mut ws = MttkrpWorkspace::new(cfg, ntasks);
        let mut outs: Vec<Matrix> = tensor
            .dims()
            .iter()
            .map(|&d| Matrix::zeros(d, RANK))
            .collect();
        let start = Instant::now();
        for _ in 0..REPS {
            for (mode, out) in outs.iter_mut().enumerate() {
                mttkrp(&set, &factors, mode, out, &mut ws, &team, cfg);
            }
        }
        start.elapsed().as_secs_f64()
    };

    println!("matrix-access strategies (all modes x {REPS} reps):");
    for access in [
        MatrixAccess::RowCopy,
        MatrixAccess::Index2D,
        MatrixAccess::PointerChecked,
        MatrixAccess::PointerZip,
    ] {
        let cfg = MttkrpConfig {
            access,
            ..Default::default()
        };
        println!("  {:<10} {:>8.3} s", access.label(), time_mttkrp(&cfg));
    }

    println!("\nlock strategies (same workload):");
    for locks in LockStrategy::ALL {
        let cfg = MttkrpConfig {
            locks,
            ..Default::default()
        };
        let locked_modes: Vec<usize> = (0..tensor.order())
            .filter(|&m| uses_locks(&set, m, ntasks, &cfg))
            .collect();
        println!(
            "  {:<10} {:>8.3} s   (locks used on modes {:?})",
            locks.label(),
            time_mttkrp(&cfg),
            locked_modes
        );
    }

    println!("\nfull CP-ALS under the paper's implementation presets:");
    for imp in [
        Implementation::Reference,
        Implementation::PortedInitial,
        Implementation::PortedOptimized,
    ] {
        let opts = CpalsOptions {
            rank: RANK,
            max_iters: 5,
            tolerance: 0.0,
            ntasks,
            ..Default::default()
        }
        .with_implementation(imp);
        let start = Instant::now();
        let out = cp_als(&tensor, &opts);
        println!(
            "  {:<16} {:>8.3} s  (fit {:.4})",
            imp.label(),
            start.elapsed().as_secs_f64(),
            out.fit
        );
    }
}
