//! Pattern extraction from a review tensor (the paper's YELP use case).
//!
//! The Yelp data set models (user, business, word) review triples; tensor
//! decomposition surfaces latent "topics" — groups of users who review
//! similar businesses with similar vocabulary. Here we *plant* such topics
//! in a synthetic review tensor, run CP-ALS, and verify the decomposition
//! recovers them: each recovered component should concentrate its mass on
//! one planted cluster in every mode.
//!
//! ```sh
//! cargo run --release --example review_analysis
//! ```

use splatt::rt::rng::StdRng;
use splatt::rt::rng::{RngExt, SeedableRng};
use splatt::{cp_als, CpalsOptions, SparseTensor};

const USERS: usize = 600;
const BUSINESSES: usize = 300;
const WORDS: usize = 900;
const CLUSTERS: usize = 4;
const REVIEWS: usize = 40_000;

/// Which planted cluster an index of dimension `dim` belongs to
/// (contiguous equal-sized blocks).
fn cluster_of(idx: usize, dim: usize) -> usize {
    idx * CLUSTERS / dim
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut tensor = SparseTensor::new(vec![USERS, BUSINESSES, WORDS]);

    // 90% of review triples stay within one topic cluster; 10% are noise.
    for _ in 0..REVIEWS {
        let (u, b, w) = if rng.random::<f64>() < 0.9 {
            let c = rng.random_range(0..CLUSTERS);
            let pick = |dim: usize, rng: &mut StdRng| {
                (c * dim / CLUSTERS + rng.random_range(0..dim / CLUSTERS)) as u32
            };
            (
                pick(USERS, &mut rng),
                pick(BUSINESSES, &mut rng),
                pick(WORDS, &mut rng),
            )
        } else {
            (
                rng.random_range(0..USERS as u32),
                rng.random_range(0..BUSINESSES as u32),
                rng.random_range(0..WORDS as u32),
            )
        };
        // star-rating-like positive weight
        tensor.push(&[u, b, w], 1.0 + rng.random_range(0..5) as f64);
    }

    println!("synthetic review tensor with {CLUSTERS} planted topics:");
    print!("{}", splatt::tensor::TensorStats::compute(&tensor));

    let opts = CpalsOptions {
        rank: CLUSTERS,
        max_iters: 40,
        tolerance: 1e-6,
        ntasks: 4,
        ..Default::default()
    };
    let out = cp_als(&tensor, &opts);
    println!(
        "\nCP-ALS rank {CLUSTERS}: fit {:.4} in {} iterations",
        out.fit, out.iterations
    );

    // For each component, find the dominant planted cluster in each mode
    // and the fraction of its top-loading rows that fall inside it.
    let mode_names = ["users", "businesses", "words"];
    let mode_dims = [USERS, BUSINESSES, WORDS];
    println!("\nrecovered components (majority planted cluster per mode):");
    let mut all_pure = true;
    for &r in &out.model.components_by_weight() {
        print!("  component {r} (lambda {:>8.2}):", out.model.lambda[r]);
        for (m, (&dim, name)) in mode_dims.iter().zip(mode_names).enumerate() {
            let top = out.model.top_rows(m, r, 20);
            let mut votes = [0usize; CLUSTERS];
            for &(idx, _) in &top {
                votes[cluster_of(idx, dim)] += 1;
            }
            let (best, &count) = votes.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
            let purity = count as f64 / top.len() as f64;
            if purity < 0.8 {
                all_pure = false;
            }
            print!("  {name}: cluster {best} ({:.0}%)", purity * 100.0);
        }
        println!();
    }

    if all_pure {
        println!("\nall components align with planted topics — patterns recovered.");
    } else {
        println!("\nwarning: some components are mixed; try more iterations.");
    }
}
