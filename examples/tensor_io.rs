//! Tensor I/O, sorting, and CSF inspection — the pre-processing pipeline.
//!
//! Demonstrates the FROSTT `.tns` round trip the paper's data sets use,
//! the pre-processing sort in all four optimization states (Figure 1's
//! variants), and what the CSF representations look like for each
//! allocation policy.
//!
//! ```sh
//! cargo run --release --example tensor_io
//! ```

use splatt::par::TaskTeam;
use splatt::tensor::{io, sort, stats, SortVariant};
use splatt::{CsfAlloc, CsfSet};
use std::time::Instant;

fn main() {
    // Generate a NELL-2-shaped tensor and write it as .tns text.
    let shape = splatt::tensor::synth::NELL2;
    let tensor = shape.generate(1.0 / 400.0, 11);
    let dir = std::env::temp_dir().join("splatt_example_io");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("nell2_small.tns");

    io::write_tns_file(&tensor, &path).expect("write .tns");
    let on_disk = std::fs::metadata(&path).expect("stat").len() as usize;
    println!(
        "wrote {} nonzeros to {} ({})",
        tensor.nnz(),
        path.display(),
        stats::human_bytes(on_disk)
    );

    let back = io::read_tns_file(&path).expect("read .tns");
    assert_eq!(back.canonical_entries(), tensor.canonical_entries());
    println!("round trip OK; stats:");
    print!("{}", splatt::tensor::TensorStats::compute(&back));

    // The pre-processing sort, in every optimization state.
    let team = TaskTeam::new(4);
    println!("\nsort (mode 0, 4 tasks) across Figure 1's variants:");
    for variant in SortVariant::ALL {
        let mut t = tensor.clone();
        let start = Instant::now();
        sort::sort_for_mode(&mut t, 0, &team, variant);
        println!(
            "  {:<10} {:>8.2} ms",
            variant.label(),
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // CSF representations under each allocation policy.
    println!("\nCSF allocation policies:");
    for alloc in [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All] {
        let set = CsfSet::build(&tensor, alloc, &team, SortVariant::AllOpts);
        let bytes: usize = set.csfs().iter().map(|c| c.storage_bytes()).sum();
        let roots: Vec<usize> = set.csfs().iter().map(|c| c.dim_perm()[0]).collect();
        println!(
            "  {alloc:?}: {} representation(s), roots {roots:?}, {}",
            set.csfs().len(),
            stats::human_bytes(bytes)
        );
        for mode in 0..tensor.order() {
            let (csf, kind) = set.for_mode(mode);
            println!(
                "    MTTKRP mode {mode}: {kind:?} kernel on CSF rooted at mode {}",
                csf.dim_perm()[0]
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
