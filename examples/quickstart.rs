//! Quickstart: decompose a synthetic sparse tensor and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use splatt::par::Routine;
use splatt::{cp_als, CpalsOptions};

fn main() {
    // A sparse 3rd-order tensor shaped like a small slice of the paper's
    // YELP data set (power-law index skew, ~50k nonzeros).
    let shape = splatt::tensor::synth::YELP;
    let tensor = shape.generate(1.0 / 160.0, 42);
    println!("generated {} tensor:", shape.name);
    print!("{}", splatt::tensor::TensorStats::compute(&tensor));

    // Decompose at rank 10 with 4 tasks.
    let opts = CpalsOptions {
        rank: 10,
        max_iters: 20,
        tolerance: 1e-5,
        ntasks: 4,
        ..Default::default()
    };
    let out = cp_als(&tensor, &opts);

    println!(
        "\nCP-ALS: rank {}, {} iterations, fit {:.4}",
        opts.rank, out.iterations, out.fit
    );
    println!("\nper-routine wall time (the paper's Table III layout):");
    for r in [
        Routine::Mttkrp,
        Routine::Inverse,
        Routine::AtA,
        Routine::MatNorm,
        Routine::Fit,
        Routine::Sort,
    ] {
        println!("  {:<10} {:>9.4} s", r.label(), out.timers.seconds(r));
    }

    // The heaviest components and their weights.
    println!("\ntop components by weight:");
    for &r in out.model.components_by_weight().iter().take(3) {
        println!("  component {r}: lambda = {:.3}", out.model.lambda[r]);
    }
}
