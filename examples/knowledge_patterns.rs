//! Relation discovery in a knowledge tensor (the paper's NELL use case).
//!
//! The NELL data sets store (subject, verb, object) triples mined by the
//! Never-Ending Language Learner; CP decomposition groups
//! subject/verb/object vocabularies into coherent relation patterns. We
//! synthesize a knowledge tensor with planted relations — e.g. a block of
//! "person-verbs-food" style triples — decompose it, and report each
//! component's most characteristic subjects, verbs, and objects.
//!
//! The example also demonstrates arbitrary-order support (a paper
//! "future work" item this implementation includes) by appending a
//! 4th *context* mode and decomposing the 4-way tensor too.
//!
//! ```sh
//! cargo run --release --example knowledge_patterns
//! ```

use splatt::rt::rng::StdRng;
use splatt::rt::rng::{RngExt, SeedableRng};
use splatt::{cp_als, CpalsOptions, SparseTensor};

const SUBJECTS: usize = 500;
const VERBS: usize = 60;
const OBJECTS: usize = 800;
const RELATIONS: usize = 3;
const TRIPLES: usize = 30_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);

    // Planted relations: each relation r owns a block of subjects, a small
    // set of verbs, and a block of objects.
    let subject_block = SUBJECTS / RELATIONS;
    let verb_block = VERBS / RELATIONS;
    let object_block = OBJECTS / RELATIONS;

    let mut tensor = SparseTensor::new(vec![SUBJECTS, VERBS, OBJECTS]);
    for _ in 0..TRIPLES {
        let r = rng.random_range(0..RELATIONS);
        let (s, v, o) = if rng.random::<f64>() < 0.85 {
            (
                (r * subject_block + rng.random_range(0..subject_block)) as u32,
                (r * verb_block + rng.random_range(0..verb_block)) as u32,
                (r * object_block + rng.random_range(0..object_block)) as u32,
            )
        } else {
            (
                rng.random_range(0..SUBJECTS as u32),
                rng.random_range(0..VERBS as u32),
                rng.random_range(0..OBJECTS as u32),
            )
        };
        // co-occurrence count-like value
        tensor.push(&[s, v, o], 1.0 + rng.random::<f64>());
    }
    tensor.coalesce();

    println!("synthetic knowledge tensor ({RELATIONS} planted relations):");
    print!("{}", splatt::tensor::TensorStats::compute(&tensor));

    let opts = CpalsOptions {
        rank: RELATIONS,
        max_iters: 35,
        tolerance: 1e-6,
        ntasks: 4,
        ..Default::default()
    };
    let out = cp_als(&tensor, &opts);
    println!(
        "\n3-way CP-ALS: fit {:.4} in {} iterations",
        out.fit, out.iterations
    );

    println!("\ndiscovered relation patterns (top ids per mode):");
    for &r in &out.model.components_by_weight() {
        let subj: Vec<usize> = out
            .model
            .top_rows(0, r, 4)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        let verb: Vec<usize> = out
            .model
            .top_rows(1, r, 3)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        let obj: Vec<usize> = out
            .model
            .top_rows(2, r, 4)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        println!("  component {r}: subjects {subj:?} --verbs {verb:?}--> objects {obj:?}");
        // sanity: all top verbs should come from one planted verb block
        let blocks: std::collections::HashSet<usize> =
            verb.iter().map(|&v| v / verb_block).collect();
        println!(
            "    verb blocks touched: {:?} {}",
            blocks,
            if blocks.len() == 1 {
                "(coherent relation)"
            } else {
                "(mixed)"
            }
        );
    }

    // ---- 4-way extension: add a context mode ----
    const CONTEXTS: usize = 12;
    let mut four = SparseTensor::new(vec![SUBJECTS, VERBS, OBJECTS, CONTEXTS]);
    for x in 0..tensor.nnz() {
        let c = tensor.coord(x);
        // context correlates with the relation's verb block
        let ctx = ((c[1] as usize / verb_block) * (CONTEXTS / RELATIONS)
            + rng.random_range(0..CONTEXTS / RELATIONS)) as u32;
        four.push(&[c[0], c[1], c[2], ctx], tensor.vals()[x]);
    }
    let opts4 = CpalsOptions {
        rank: RELATIONS,
        max_iters: 25,
        tolerance: 1e-6,
        ntasks: 4,
        ..opts
    };
    let out4 = cp_als(&four, &opts4);
    println!(
        "\n4-way CP-ALS (with context mode): fit {:.4} in {} iterations",
        out4.fit, out4.iterations
    );
    for &r in &out4.model.components_by_weight() {
        let ctx: Vec<usize> = out4
            .model
            .top_rows(3, r, 3)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        println!("  component {r}: dominant contexts {ctx:?}");
    }
}
