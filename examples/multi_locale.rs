//! Simulated multi-locale decomposition (the paper's future-work item).
//!
//! The Chapel-port paper plans to add SPLATT's distributed-memory
//! (medium-grained) algorithm using Chapel's multi-locales. This example
//! runs the simulated version: a NELL-2-shaped tensor distributed over 8
//! locales under several process-grid shapes, showing that (a) the
//! distributed solver converges to exactly the shared-memory fit, and
//! (b) balanced grids move far less factor data than one-dimensional
//! decompositions — the medium-grained paper's central claim.
//!
//! ```sh
//! cargo run --release --example multi_locale
//! ```

use splatt::dist::{dist_cp_als, DistCpalsOptions, ProcessGrid, TensorDistribution};
use splatt::{cp_als, CpalsOptions};

fn main() {
    let mut tensor = splatt::tensor::synth::NELL2.generate(1.0 / 400.0, 99);
    // the scaled-down generator produces duplicate coordinates; merge
    // them so the reported fits are meaningful
    tensor.coalesce();
    println!("tensor: {}", splatt::tensor::TensorStats::compute(&tensor));

    // shared-memory reference fit
    let shared = cp_als(
        &tensor,
        &CpalsOptions {
            rank: 12,
            max_iters: 10,
            tolerance: 0.0,
            ntasks: 1,
            seed: 0xD157,
            ..Default::default()
        },
    );
    println!("shared-memory fit after 10 iterations: {:.6}\n", shared.fit);

    println!(
        "{:>6}  {:>12}  {:>14}  {:>10}  {:>9}",
        "grid", "total MB", "max block nnz", "fit", "Δ fit"
    );
    for grid in [vec![8, 1, 1], vec![1, 1, 8], vec![4, 2, 1], vec![2, 2, 2]] {
        let dist = TensorDistribution::new(&tensor, ProcessGrid::new(grid.clone()));
        let out = dist_cp_als(
            &dist,
            &DistCpalsOptions {
                rank: 12,
                max_iters: 10,
                tolerance: 0.0,
                seed: 0xD157,
                ..Default::default()
            },
        );
        println!(
            "{:>6}  {:>12.2}  {:>14}  {:>10.6}  {:>9.1e}",
            grid.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("x"),
            out.comm.total_bytes() as f64 / (1024.0 * 1024.0),
            dist.max_block_nnz(),
            out.fit,
            (out.fit - shared.fit).abs(),
        );
    }
    println!("\nsame answer everywhere; the grid shape only moves the communication bill.");
}
