//! # splatt-rs — parallel sparse tensor decomposition
//!
//! A from-scratch Rust implementation of shared-memory sparse CP-ALS over
//! compressed sparse fibers, reproducing both systems studied in
//! *"Parallel Sparse Tensor Decomposition in Chapel"* (Rolinger, Simon &
//! Krieger, IPDPSW 2018): **SPLATT** (the C/OpenMP reference) and the
//! paper's **Chapel port** in its initial and optimized states — all as
//! configurations of one code base.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`mod@core`] | CSF format, MTTKRP kernels, CP-ALS driver |
//! | [`tensor`] | COO tensors, `.tns` I/O, synthetic data sets, sorting |
//! | [`dense`] | matrices, SYRK, Cholesky, eigen, normal-equation solves |
//! | [`par`] | task teams (`coforall`), partitioning, scratch, timers |
//! | [`locks`] | mutex pools: spin / sleeping / OS-adaptive |
//! | [`probe`] | lock/thread/allocation profiling, `ProfileReport` |
//! | [`faults`] | seeded fault injection (`FaultPlan`), recovery policies |
//! | [`mod@guard`] | run governance: cancellation, deadlines, budgets, watchdog |
//! | [`mod@serve`] | model registry, batched query engine, TCP serving front end |
//! | [`mod@store`] | checksummed WAL, atomic artifact publish, crash recovery |
//! | [`rt`] | sync primitives, seeded RNG, parallel helpers, qc harness |
//!
//! The most common entry points are also re-exported at the top level.
//!
//! ```
//! use splatt::{cp_als, CpalsOptions};
//!
//! // a small, exactly rank-3 tensor with known factors
//! let (tensor, _truth) = splatt::tensor::synth::planted_dense(&[15, 12, 10], 3, 0.0, 1);
//! let opts = CpalsOptions { rank: 3, max_iters: 30, ntasks: 2, ..Default::default() };
//! let out = cp_als(&tensor, &opts);
//! assert!(out.fit > 0.95);
//! ```

/// The decomposition core: CSF, MTTKRP, CP-ALS.
pub mod core {
    pub use splatt_core::*;
}

/// Sparse tensor storage, I/O, synthesis, and sorting.
pub mod tensor {
    pub use splatt_tensor::*;
}

/// Dense linear algebra substrate.
pub mod dense {
    pub use splatt_dense::*;
}

/// Tasking substrate: teams, partitioning, scratch buffers, timers.
pub mod par {
    pub use splatt_par::*;
}

/// Lock pools and strategies.
pub mod locks {
    pub use splatt_locks::*;
}

/// Simulated distributed-memory (multi-locale) decomposition.
pub mod dist {
    pub use splatt_dist::*;
}

/// Deterministic fault injection and recovery policies.
pub mod faults {
    pub use splatt_faults::*;
}

/// Observability: lock-contention counters, per-thread load, allocation
/// accounting, and the hierarchical profile report.
pub mod probe {
    pub use splatt_probe::*;
}

/// Runtime substrate: sync primitives, seeded RNG, parallel helpers, and
/// the deterministic property-test harness.
pub mod rt {
    pub use splatt_rt::*;
}

/// Run governance: cooperative cancellation, deadlines, memory budgets,
/// and the stall watchdog ([`RunGuard`] and friends).
pub mod guard {
    pub use splatt_guard::*;
}

/// The std-only multiplexed I/O substrate: readiness-polled reactor,
/// bounded worker pool, frame state machines, and the timer wheel the
/// serving front end runs on.
pub mod net {
    pub use splatt_net::*;
}

/// Factor-model serving: registry, batched query engine, TCP front end.
pub mod serve {
    pub use splatt_serve::*;
}

/// Crash-safe persistence: checksummed frames, the nnz-delta WAL,
/// atomic artifact publish, and the versioned store manifest.
pub mod store {
    pub use splatt_store::*;
}

pub use splatt_core::{
    corcondia, cp_als, tensor_complete, tensor_complete_ccd, tensor_complete_sgd, try_cp_als,
    try_cp_als_governed, try_cp_als_guarded, CcdOptions, Checkpoint, CheckpointError,
    CompletionOptions, CompletionOutput, Constraint, CpalsError, CpalsOptions, CpalsOutput, Csf,
    CsfAlloc, CsfSet, DispatchError, DispatchTable, FormatChoice, GovernancePolicy, GovernedRun,
    Implementation, KruskalModel, MatrixAccess, OnOverrun, RefreshEngine, RefreshError,
    RefreshOptions, RefreshOutcome, RunAborted, SgdOptions, TensorFormat,
};
pub use splatt_dense::Matrix;
pub use splatt_faults::{FaultKind, FaultPlan, FaultRates, RecoveryAction, RecoveryPolicy};
pub use splatt_guard::{
    CancelToken, Deadline, GuardConfig, MemoryBudget, RunGuard, TripReason, WatchdogConfig,
};
pub use splatt_locks::LockStrategy;
pub use splatt_par::TeamError;
pub use splatt_serve::{ServeConfig, ServeEngine, ServeError};
pub use splatt_tensor::{SortVariant, SparseTensor};
