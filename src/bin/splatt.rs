//! `splatt` — command-line sparse tensor decomposition.
//!
//! The Rust counterpart of SPLATT's CLI:
//!
//! ```sh
//! splatt cpd tensor.tns --rank 35 --iters 20 --tasks 8 --out factors
//! splatt stats tensor.tns
//! splatt check tensor.tns
//! splatt generate yelp --scale 0.01 --out yelp_small.tns
//! ```

use splatt::core::{
    rmse_observed, tensor_complete, tensor_complete_ccd, tensor_complete_sgd, CcdOptions,
    CompletionOptions, SgdOptions,
};
use splatt::par::Routine;
use splatt::serve::protocol::Response;
use splatt::serve::{
    serve_with, Client, ClusterConfig, FrontEndConfig, LoopbackCluster, ServeConfig, ServeEngine,
    SharedModel,
};
use splatt::tensor::{io, synth, TensorStats};
use splatt::{
    corcondia, try_cp_als, try_cp_als_governed, Constraint, CpalsError, CpalsOptions, CsfAlloc,
    FaultPlan, GovernancePolicy, Implementation, KruskalModel, Matrix, OnOverrun, TensorFormat,
    WatchdogConfig,
};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         splatt cpd <tensor.tns> [--rank R] [--iters N] [--tol T] [--tasks N]\n              \
         [--impl reference|ported-initial|ported-optimized]\n              \
         [--csf one|two|all] [--format csf|alto|auto]\n              \
         [--dispatch-baseline FILE.json]\n              \
         [--seed S] [--nonneg 1] [--diagnose 1]\n              \
         [--dedup keep|sum|error]\n              \
         [--profile FILE.json] [--out PREFIX]\n              \
         [--fault-plan seed=S,straggler=P,drop=P,corrupt=P,nan=P,nonspd=P,horizon=N]\n              \
         [--checkpoint DIR] [--resume FILE|DIR]\n              \
         [--deadline SECS] [--mem-budget BYTES] [--stall-bound MS]\n              \
         [--on-overrun abort|checkpoint|degrade]\n  \
         splatt complete <train.tns> [--solver als|sgd|ccd] [--rank R] [--iters N]\n              \
         [--tol T] [--reg MU] [--tasks N] [--seed S]\n              \
         [--test FILE.tns] [--out PREFIX] [--model FILE]\n  \
         splatt predict <model.kruskal> <coords.tns>\n  \
         splatt export-model <checkpoint|model|.kruskal> --out FILE\n  \
         splatt serve --model NAME=FILE[,NAME=FILE...] [--addr HOST:PORT]\n              \
         [--tasks N] [--depth N] [--batch N] [--cache N] [--deadline-ms MS]\n              \
         [--net-workers N] [--max-conns N] [--legacy-threads 1]\n              \
         [--shards N [--replicas M] [--seed S]]   (cluster mode: one --model)\n  \
         splatt cluster <addr>   (router health + per-shard failover counters)\n  \
         splatt query <addr> entry --model NAME --coords i,j,k[;i,j,k...]\n              \
         [--version V] [--deadline-ms MS]   (coords are zero-based)\n  \
         splatt query <addr> slice --model NAME --mode M --index I\n  \
         splatt query <addr> topk  --model NAME --mode M --k K [--fixed i,j]\n  \
         splatt query <addr> stats|list|health|shutdown\n  \
         splatt ingest <store-dir> <delta.tns> [--batch N] [--segment-bytes B]\n              \
         (append nnz deltas to the store's checksummed WAL)\n  \
         splatt recover <store-dir> [--base base.tns] [--out merged.tns]\n              \
         [--report FILE.json]   (replay the WAL, merge into the base tensor)\n  \
         splatt refresh <store-dir> [--base base.tns] [--rank R] [--iters N] [--tol T]\n              \
         [--tasks N] [--seed S] [--rounds N] [--audit-cold 1]\n              \
         [--deadline SECS] [--mem-budget BYTES] [--stall-bound MS]\n              \
         [--on-overrun abort|checkpoint|degrade] [--checkpoint DIR]\n              \
         [--model-file NAME] [--report FILE.json]\n              \
         (tail the WAL past the watermark, warm-refit, republish atomically)\n  \
         splatt stats <tensor.tns>\n  \
         splatt check <tensor.tns>\n  \
         splatt generate <yelp|rate-beer|beer-advocate|nell-2|netflix|random>\n              \
         [--scale F] [--seed S] [--dims IxJxK --nnz N] --out FILE"
    );
    ExitCode::from(2)
}

/// Minimal flag parser: `--key value` pairs after the positional args.
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{a}'"))?;
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            out.push((key.to_string(), val.clone()));
        }
        Ok(Flags(out))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag, in order.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.0
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }
}

fn load(path: &str) -> Result<splatt::SparseTensor, String> {
    io::read_tns_file(path).map_err(|e| format!("{path}: {e}"))
}

/// Load honoring a `--dedup keep|sum|error` flag (keep is the default).
fn load_with_dedup(path: &str, flags: &Flags) -> Result<splatt::SparseTensor, String> {
    let policy = match flags.get("dedup").unwrap_or("keep") {
        "keep" => io::DuplicatePolicy::Keep,
        "sum" => io::DuplicatePolicy::Sum,
        "error" => io::DuplicatePolicy::Error,
        other => return Err(format!("unknown --dedup '{other}' (keep|sum|error)")),
    };
    io::read_tns_file_with(path, policy).map_err(|e| format!("{path}: {e}"))
}

fn write_matrix(path: &std::path::Path, m: &Matrix) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for i in 0..m.rows() {
        let row: Vec<String> = m.row(i).iter().map(|v| format!("{v:.17e}")).collect();
        writeln!(f, "{}", row.join(" "))?;
    }
    f.flush()
}

fn cmd_cpd(path: &str, flags: &Flags) -> Result<(), String> {
    let tensor = load_with_dedup(path, flags)?;
    println!("{path}:");
    print!("{}", TensorStats::compute(&tensor));

    let imp = match flags.get("impl").unwrap_or("reference") {
        "reference" => Implementation::Reference,
        "ported-initial" => Implementation::PortedInitial,
        "ported-optimized" => Implementation::PortedOptimized,
        other => return Err(format!("unknown --impl '{other}'")),
    };
    let csf_alloc = match flags.get("csf").unwrap_or("two") {
        "one" => CsfAlloc::One,
        "two" => CsfAlloc::Two,
        "all" => CsfAlloc::All,
        other => return Err(format!("unknown --csf '{other}'")),
    };
    let format = match flags.get("format") {
        None => TensorFormat::default(),
        Some(v) => TensorFormat::parse(v)
            .ok_or_else(|| format!("unknown --format '{v}' (csf|alto|auto)"))?,
    };
    let dispatch_baseline = flags.get("dispatch-baseline").map(std::path::PathBuf::from);
    let constraint = if flags.parse_or("nonneg", 0u8)? != 0 {
        Constraint::NonNegative
    } else {
        Constraint::None
    };
    let profile_path = flags.get("profile").map(str::to_string);

    // ---- fault tolerance flags ----
    let fault_plan = flags
        .get("fault-plan")
        .map(|spec| FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}")))
        .transpose()?;
    let checkpoint_dir = flags.get("checkpoint").map(std::path::PathBuf::from);
    if let Some(dir) = &checkpoint_dir {
        if dir.exists() && !dir.is_dir() {
            return Err(format!(
                "--checkpoint: '{}' exists and is not a directory",
                dir.display()
            ));
        }
    }
    let resume_from = match flags.get("resume") {
        None => None,
        Some(p) => {
            let path = std::path::PathBuf::from(p);
            if path.is_dir() {
                // a directory means "latest checkpoint in there"
                match splatt::Checkpoint::latest_in(&path) {
                    Ok(Some(latest)) => Some(latest),
                    Ok(None) => return Err(format!("--resume: no ckpt-*.splatt in '{p}'")),
                    Err(e) => return Err(format!("--resume: {e}")),
                }
            } else if path.is_file() {
                Some(path)
            } else {
                return Err(format!("--resume: '{p}' does not exist"));
            }
        }
    };

    let opts = CpalsOptions {
        rank: flags.parse_or("rank", 10)?,
        max_iters: flags.parse_or("iters", 50)?,
        tolerance: flags.parse_or("tol", 1e-5)?,
        ntasks: flags.parse_or("tasks", 1)?,
        seed: flags.parse_or("seed", 0xC0FFEE_u64)?,
        csf_alloc,
        format,
        dispatch_baseline,
        constraint,
        profile: profile_path.is_some(),
        checkpoint_dir,
        resume_from,
        ..Default::default()
    }
    .with_implementation(imp);

    println!(
        "\nCP-ALS: rank {}, max {} iterations, {} task(s), {} implementation",
        opts.rank,
        opts.max_iters,
        opts.ntasks,
        imp.label()
    );
    if let Some(plan) = &fault_plan {
        println!(
            "fault injection: seed {}, rates {:?}",
            plan.seed(),
            plan.rates()
        );
    }
    if let Some(path) = &opts.resume_from {
        println!("resuming from {}", path.display());
    }
    if let Some(dir) = &opts.checkpoint_dir {
        println!("checkpointing to {}", dir.display());
    }

    // ---- run governance flags ----
    let deadline_secs: Option<f64> = flags
        .get("deadline")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value '{v}' for --deadline"))
        })
        .transpose()?;
    let mem_budget: Option<u64> = flags
        .get("mem-budget")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value '{v}' for --mem-budget"))
        })
        .transpose()?;
    let stall_bound_ms: Option<u64> = flags
        .get("stall-bound")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value '{v}' for --stall-bound"))
        })
        .transpose()?;
    let on_overrun = flags
        .get("on-overrun")
        .map(|v| {
            OnOverrun::parse(v)
                .ok_or_else(|| format!("unknown --on-overrun '{v}' (abort|checkpoint|degrade)"))
        })
        .transpose()?
        .unwrap_or_default();
    if on_overrun == OnOverrun::Checkpoint && opts.checkpoint_dir.is_none() {
        return Err("--on-overrun checkpoint requires --checkpoint DIR".into());
    }
    let policy = GovernancePolicy {
        deadline: deadline_secs.map(Duration::from_secs_f64),
        mem_budget,
        watchdog: stall_bound_ms.map(|ms| WatchdogConfig {
            stall_bound: Duration::from_millis(ms),
            ..Default::default()
        }),
        on_overrun,
    };

    let out = if policy.is_armed() {
        println!(
            "governance: deadline {}, mem budget {}, stall bound {}, on overrun {}",
            deadline_secs.map_or("none".into(), |s| format!("{s}s")),
            mem_budget.map_or("none".into(), |b| format!("{b} bytes")),
            stall_bound_ms.map_or("none".into(), |ms| format!("{ms}ms")),
            policy.on_overrun.label()
        );
        match try_cp_als_governed(&tensor, &opts, fault_plan.as_ref(), &policy) {
            Ok(run) => {
                for d in &run.degradations {
                    println!("degraded: {d}");
                }
                run.output
            }
            Err(CpalsError::Aborted(ab)) => {
                let mut msg = format!("{}", CpalsError::Aborted(ab));
                msg.push_str("\nhint: re-run with --resume to continue from the checkpoint");
                return Err(msg);
            }
            Err(e) => return Err(e.to_string()),
        }
    } else {
        try_cp_als(&tensor, &opts, fault_plan.as_ref()).map_err(|e| e.to_string())?
    };
    println!(
        "converged: fit {:.6} after {} iterations",
        out.fit, out.iterations
    );
    if let Some(warning) = &out.dispatch_warning {
        eprintln!("warning: dispatch degraded to the generic CSF path: {warning}");
    }
    if format != TensorFormat::Csf {
        println!("\nformat dispatch:");
        for d in &out.dispatch {
            println!(
                "  mode {} -> {} {} kernel, {} sync, {} ({})",
                d.mode,
                d.format.label(),
                d.kernel,
                d.sync,
                if d.specialize {
                    "specialized"
                } else {
                    "generic"
                },
                d.source.label()
            );
        }
    }
    if let Some(plan) = &fault_plan {
        let events = plan.events();
        println!("\ninjected faults: {}", events.len());
        for e in &events {
            println!(
                "  [it {:>3}] {:<18} at {:<24} -> {}",
                e.iteration,
                e.kind.label(),
                e.site,
                e.action.describe()
            );
        }
    }
    println!("\nper-routine seconds:");
    for r in Routine::ALL {
        println!("  {:<10} {:>10.4}", r.label(), out.timers.seconds(r));
    }

    if let Some(path) = &profile_path {
        let report = out
            .profile
            .as_ref()
            .ok_or_else(|| "--profile: run produced no profile report".to_string())?;
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        println!("\n{}", report.render());
        println!("wrote {path}");
    }

    if flags.parse_or("diagnose", 0u8)? != 0 {
        if tensor.order() == 3 {
            println!(
                "\ncore consistency (CORCONDIA): {:.1}",
                corcondia(&out.model, &tensor)
            );
        } else {
            println!("\n--diagnose: CORCONDIA requires a 3rd-order tensor; skipped");
        }
    }

    if let Some(prefix) = flags.get("out") {
        let lambda_path = format!("{prefix}.lambda.txt");
        let mut f =
            std::fs::File::create(&lambda_path).map_err(|e| format!("{lambda_path}: {e}"))?;
        for l in &out.model.lambda {
            writeln!(f, "{l:.17e}").map_err(|e| e.to_string())?;
        }
        println!("\nwrote {lambda_path}");
        for (m, factor) in out.model.factors.iter().enumerate() {
            let p = format!("{prefix}.mode{m}.txt");
            write_matrix(std::path::Path::new(&p), factor).map_err(|e| format!("{p}: {e}"))?;
            println!("wrote {p} ({}x{})", factor.rows(), factor.cols());
        }
    }
    if let Some(model_path) = flags.get("model") {
        save_model(&out.model, model_path)?;
    }
    Ok(())
}

fn save_model(model: &KruskalModel, path: &str) -> Result<(), String> {
    // Text `.kruskal` format, but published atomically (temp + fsync +
    // rename) so a crash mid-save can never leave a torn half-model
    // where a previous good model used to be.
    let mut bytes = Vec::new();
    model
        .write(&mut bytes)
        .map_err(|e| format!("{path}: {e}"))?;
    splatt::store::publish_bytes(std::path::Path::new(path), &bytes, None)
        .map_err(|e| format!("{path}: {e}"))?;
    println!(
        "wrote {path} (rank {}, {} modes)",
        model.rank(),
        model.order()
    );
    Ok(())
}

fn cmd_predict(model_path: &str, coords_path: &str) -> Result<(), String> {
    let model = splatt::core::load_model_path(std::path::Path::new(model_path))
        .map_err(|e| format!("{model_path}: {e}"))?;
    let queries = load(coords_path)?;
    if queries.order() != model.order() {
        return Err(format!(
            "model has {} modes but queries have {}",
            model.order(),
            queries.order()
        ));
    }
    let mut sse = 0.0;
    for x in 0..queries.nnz() {
        let coord = queries.coord(x);
        let pred = model.value_at(&coord);
        let actual = queries.vals()[x];
        sse += (pred - actual) * (pred - actual);
        let printable: Vec<String> = coord.iter().map(|&c| (c as u64 + 1).to_string()).collect();
        println!("{} {pred:.6}", printable.join(" "));
    }
    if queries.nnz() > 0 {
        eprintln!(
            "RMSE vs provided values: {:.6}",
            (sse / queries.nnz() as f64).sqrt()
        );
    }
    Ok(())
}

fn cmd_complete(path: &str, flags: &Flags) -> Result<(), String> {
    let train = load(path)?;
    println!("{path}:");
    print!("{}", TensorStats::compute(&train));

    let rank = flags.parse_or("rank", 10)?;
    let max_iters = flags.parse_or("iters", 50)?;
    let tolerance = flags.parse_or("tol", 1e-5)?;
    let regularization = flags.parse_or("reg", 1e-2)?;
    let ntasks = flags.parse_or("tasks", 1)?;
    let seed = flags.parse_or("seed", 0xBEEF_u64)?;
    let solver = flags.get("solver").unwrap_or("als");
    println!(
        "\ntensor completion: solver {solver}, rank {rank}, max {max_iters} sweeps, \
         mu {regularization}, {ntasks} task(s)"
    );
    let out = match solver {
        "als" => tensor_complete(
            &train,
            &CompletionOptions {
                rank,
                max_iters,
                tolerance,
                regularization,
                ntasks,
                seed,
                ..Default::default()
            },
        ),
        "sgd" => tensor_complete_sgd(
            &train,
            &SgdOptions {
                rank,
                max_epochs: max_iters,
                tolerance,
                regularization,
                ntasks,
                seed,
                step: flags.parse_or("step", 0.1)?,
                decay: flags.parse_or("decay", 0.05)?,
                ..Default::default()
            },
        ),
        "ccd" => tensor_complete_ccd(
            &train,
            &CcdOptions {
                rank,
                max_sweeps: max_iters,
                tolerance,
                regularization,
                ntasks,
                seed,
                ..Default::default()
            },
        ),
        other => return Err(format!("unknown --solver '{other}' (als|sgd|ccd)")),
    };
    println!("train RMSE {:.6} after {} sweeps", out.rmse, out.iterations);

    if let Some(test_path) = flags.get("test") {
        let test = load(test_path)?;
        println!(
            "held-out RMSE {:.6} on {test_path}",
            rmse_observed(&out.model, &test)
        );
    }
    if let Some(prefix) = flags.get("out") {
        for (m, factor) in out.model.factors.iter().enumerate() {
            let p = format!("{prefix}.mode{m}.txt");
            write_matrix(std::path::Path::new(&p), factor).map_err(|e| format!("{p}: {e}"))?;
            println!("wrote {p} ({}x{})", factor.rows(), factor.cols());
        }
    }
    if let Some(model_path) = flags.get("model") {
        save_model(&out.model, model_path)?;
    }
    Ok(())
}

/// Convert a checkpoint, bit-exact model file, or text `.kruskal` model
/// into the canonical bit-exact model format used by `splatt serve`.
///
/// The output is a CRC-framed artifact written via atomic publish, so a
/// crash mid-export leaves either the old file or the new one — never a
/// torn hybrid that parses as a wrong model.
fn cmd_export_model(input: &str, flags: &Flags) -> Result<(), String> {
    let out_path = flags.get("out").ok_or("export-model requires --out FILE")?;
    let model = splatt::core::load_model_path(std::path::Path::new(input))
        .map_err(|e| format!("{input}: {e}"))?;
    splatt::core::save_model_path(&model, std::path::Path::new(out_path), 1)
        .map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "wrote {out_path} (rank {}, {} modes, dims {:?})",
        model.rank(),
        model.order(),
        model.factors.iter().map(Matrix::rows).collect::<Vec<_>>()
    );
    Ok(())
}

/// Copy a global store-counter snapshot into the probe report's store row.
fn store_row(c: splatt::store::StoreCounters) -> splatt::probe::StoreRow {
    splatt::probe::StoreRow {
        wal_appends: c.wal_appends,
        wal_commits: c.wal_commits,
        fsyncs: c.fsyncs,
        atomic_publishes: c.atomic_publishes,
        segments_rotated: c.segments_rotated,
        recoveries: c.recoveries,
        records_recovered: c.records_recovered,
        torn_bytes_truncated: c.torn_bytes_truncated,
        checksum_failures: c.checksum_failures,
    }
}

/// Append the nonzeros of `delta.tns` to a store directory's WAL in
/// group-committed batches, then publish a refreshed manifest. Every
/// batch reported as committed here is durable: the WAL fsyncs before
/// `commit` returns, and recovery replays it even after power loss.
fn cmd_ingest(store_dir: &str, delta_path: &str, flags: &Flags) -> Result<(), String> {
    use splatt::store::{counters_snapshot, encode_delta, Manifest, Wal, WalOptions};
    let batch: usize = flags.parse_or("batch", 1024)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let segment_bytes: u64 = flags.parse_or("segment-bytes", 4 << 20)?;
    if segment_bytes == 0 {
        return Err("--segment-bytes must be at least 1".into());
    }
    let (order, entries) =
        io::read_tns_entries_file(delta_path).map_err(|e| format!("{delta_path}: {e}"))?;
    let dir = std::path::Path::new(store_dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("{store_dir}: {e}"))?;
    let (mut wal, recovery) = Wal::open(
        dir,
        WalOptions {
            segment_bytes,
            plan: None,
        },
    )
    .map_err(|e| format!("{store_dir}: {e}"))?;
    if recovery.truncated_bytes > 0 {
        println!(
            "recovered WAL: truncated {} torn tail byte(s), {} committed record(s) intact",
            recovery.truncated_bytes,
            recovery.records.len()
        );
    }
    let mut committed_nnz = 0usize;
    for chunk in entries.chunks(batch) {
        let payload = encode_delta(order, chunk);
        wal.append(&payload)
            .map_err(|e| format!("{store_dir}: {e}"))?;
        wal.commit().map_err(|e| format!("{store_dir}: {e}"))?;
        committed_nnz += chunk.len();
    }
    let mut manifest = Manifest::load(dir, None)
        .map_err(|e| format!("{store_dir}: {e}"))?
        .unwrap_or_default();
    manifest.set("order", &order.to_string());
    manifest.set("segment", &wal.segment_index().to_string());
    if let Some(seq) = wal.acked_seq() {
        manifest.set("acked_seq", &seq.to_string());
    }
    let generation = manifest
        .publish(dir, None)
        .map_err(|e| format!("{store_dir}: {e}"))?;
    let c = counters_snapshot();
    println!(
        "ingested {committed_nnz} nonzeros from {delta_path} into {store_dir} \
         (manifest generation {generation})"
    );
    println!(
        "store: {} WAL appends in {} commits, {} fsyncs, {} atomic publishes, \
         {} segments rotated",
        c.wal_appends, c.wal_commits, c.fsyncs, c.atomic_publishes, c.segments_rotated
    );
    Ok(())
}

/// Replay a store directory's WAL, merge the recovered nnz deltas into
/// an optional base tensor, and report what recovery found. Coincident
/// coordinates sum (the WAL is a log of *deltas*, not of final values).
fn cmd_recover(store_dir: &str, flags: &Flags) -> Result<(), String> {
    use splatt::store::{counters_snapshot, decode_delta, Manifest, Wal};
    let dir = std::path::Path::new(store_dir);
    let recovery = Wal::recover(dir, None).map_err(|e| format!("{store_dir}: {e}"))?;
    let manifest = Manifest::load(dir, None).map_err(|e| format!("{store_dir}: {e}"))?;
    if let Some(m) = &manifest {
        println!(
            "manifest generation {}{}",
            m.generation,
            m.get("acked_seq")
                .map(|s| format!(", acked seq {s}"))
                .unwrap_or_default()
        );
    }
    let mut entries: Vec<(Vec<u32>, f64)> = Vec::new();
    let mut order: Option<usize> = None;
    for record in &recovery.records {
        let (rec_order, batch) = decode_delta(&record.payload)
            .map_err(|e| format!("{store_dir}: WAL record {}: {e}", record.seq))?;
        match order {
            None => order = Some(rec_order),
            Some(o) if o == rec_order => {}
            Some(o) => {
                return Err(format!(
                    "{store_dir}: WAL record {} has order {rec_order}, expected {o}",
                    record.seq
                ))
            }
        }
        entries.extend(batch);
    }
    println!(
        "recovered {} record(s) holding {} nonzeros from {} segment(s), \
         truncated {} torn byte(s)",
        recovery.records.len(),
        entries.len(),
        recovery.segments_scanned,
        recovery.truncated_bytes
    );
    let merged = match (flags.get("base"), order) {
        (Some(base_path), _) => {
            let mut base = load(base_path)?;
            let expect = base.order();
            if let Some(o) = order {
                if o != expect {
                    return Err(format!(
                        "{base_path} has order {expect} but the WAL holds order-{o} deltas"
                    ));
                }
            }
            base.merge_entries(&entries);
            println!(
                "merged into {base_path}: {} nonzeros after coalescing",
                base.nnz()
            );
            Some(base)
        }
        (None, Some(o)) => {
            // Unit dims: merge_entries grows each mode to fit its data.
            let mut t = splatt::SparseTensor::new(vec![1; o]);
            t.merge_entries(&entries);
            Some(t)
        }
        (None, None) => None,
    };
    if let Some(out_path) = flags.get("out") {
        let t = merged
            .as_ref()
            .ok_or("--out needs recovered records or a --base tensor")?;
        io::write_tns_file(t, out_path).map_err(|e| format!("{out_path}: {e}"))?;
        println!("wrote {} nonzeros to {out_path}", t.nnz());
    }
    if let Some(report_path) = flags.get("report") {
        let report = splatt::probe::ProfileReport {
            store: Some(store_row(counters_snapshot())),
            ..Default::default()
        };
        std::fs::write(report_path, report.to_json()).map_err(|e| format!("{report_path}: {e}"))?;
        println!("wrote {report_path}");
    }
    Ok(())
}

/// Tail a store directory's WAL past its committed watermark, merge the
/// pending delta batches incrementally, warm-start a governed CP-ALS
/// refit from the previously published model, and atomically republish
/// the refreshed model into the store — the streaming counterpart of
/// `recover` + `cpd`. Each round commits its watermark to the manifest
/// only after the model artifact is durably published, so a crash at
/// any point recovers to a consistent (tensor, model, watermark) triple.
fn cmd_refresh(store_dir: &str, flags: &Flags) -> Result<(), String> {
    use splatt::core::refresh::{RefreshEngine, RefreshOptions};
    use splatt::faults::IoFaultPlan;
    use splatt::store::counters_snapshot;

    let dir = std::path::Path::new(store_dir);
    if !dir.is_dir() {
        return Err(format!("{store_dir}: not a directory"));
    }
    let base = flags.get("base").map(load).transpose()?;
    let rounds: usize = flags.parse_or("rounds", 1)?;
    if rounds == 0 {
        return Err("--rounds must be at least 1".into());
    }

    let cpals = CpalsOptions {
        rank: flags.parse_or("rank", 10)?,
        max_iters: flags.parse_or("iters", 50)?,
        tolerance: flags.parse_or("tol", 1e-5)?,
        ntasks: flags.parse_or("tasks", 1)?,
        seed: flags.parse_or("seed", 0xC0FFEE_u64)?,
        checkpoint_dir: flags.get("checkpoint").map(std::path::PathBuf::from),
        ..Default::default()
    };

    // Governance: same flags as `cpd`.
    let deadline_secs: Option<f64> = flags
        .get("deadline")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value '{v}' for --deadline"))
        })
        .transpose()?;
    let stall_bound_ms: Option<u64> = flags
        .get("stall-bound")
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid value '{v}' for --stall-bound"))
        })
        .transpose()?;
    let on_overrun = flags
        .get("on-overrun")
        .map(|v| {
            OnOverrun::parse(v)
                .ok_or_else(|| format!("unknown --on-overrun '{v}' (abort|checkpoint|degrade)"))
        })
        .transpose()?
        .unwrap_or_default();
    if on_overrun == OnOverrun::Checkpoint && cpals.checkpoint_dir.is_none() {
        return Err("--on-overrun checkpoint requires --checkpoint DIR".into());
    }
    let policy = GovernancePolicy {
        deadline: deadline_secs.map(Duration::from_secs_f64),
        mem_budget: flags
            .get("mem-budget")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("invalid value '{v}' for --mem-budget"))
            })
            .transpose()?,
        watchdog: stall_bound_ms.map(|ms| WatchdogConfig {
            stall_bound: Duration::from_millis(ms),
            ..Default::default()
        }),
        on_overrun,
    };

    // Disk-fault injection (crash storms drive this from scripts).
    let io_seed: u64 = flags.parse_or("io-fault-seed", 0)?;
    let plan = match flags.get("io-crash-at-op") {
        Some(v) => {
            let op: u64 = v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --io-crash-at-op"))?;
            Some(Arc::new(IoFaultPlan::quiet(io_seed).with_crash_at_op(op)))
        }
        None => None,
    };

    let opts = RefreshOptions {
        cpals,
        policy,
        plan,
        audit_cold: flags.parse_or("audit-cold", 0u8)? != 0,
        model_file: flags.get("model-file").unwrap_or_default().to_string(),
    };
    let mut eng = RefreshEngine::open(dir, base, opts).map_err(|e| format!("{store_dir}: {e}"))?;
    println!(
        "refresh: store {store_dir}, watermark {} ({} nonzeros resident, previous model {})",
        eng.watermark(),
        eng.tensor().nnz(),
        if eng.model().is_some() {
            "loaded"
        } else {
            "none"
        }
    );

    for round in 0..rounds {
        match eng
            .refresh_once()
            .map_err(|e| format!("{store_dir}: {e}"))?
        {
            None => {
                println!("round {}: WAL has nothing past the watermark", round + 1);
                break;
            }
            Some(out) => {
                println!(
                    "round {}: applied {} record(s) / {} entries \
                     ({} merge comparisons), fit {:.6} in {} iteration(s), \
                     published generation {} at watermark {}",
                    round + 1,
                    out.applied,
                    out.entries,
                    out.merge.compare_ops,
                    out.fit,
                    out.iterations,
                    out.round,
                    out.watermark
                );
                for d in &out.degradations {
                    println!("degraded: {d}");
                }
                if out.warm_fit_gap > 0.0 {
                    println!("warm-vs-cold fit gap {:.3e}", out.warm_fit_gap);
                }
            }
        }
    }

    if let Some(model) = eng.model() {
        println!(
            "model: rank {}, dims {:?} ({})",
            model.rank(),
            model.factors.iter().map(Matrix::rows).collect::<Vec<_>>(),
            dir.join(splatt::core::refresh::REFRESH_MODEL_FILE)
                .display()
        );
    }
    if let Some(report_path) = flags.get("report") {
        let report = splatt::probe::ProfileReport {
            store: Some(store_row(counters_snapshot())),
            refresh: Some(eng.refresh_row()),
            ..Default::default()
        };
        std::fs::write(report_path, report.to_json()).map_err(|e| format!("{report_path}: {e}"))?;
        println!("wrote {report_path}");
    }
    Ok(())
}

/// Parse every `--model NAME=FILE[,NAME=FILE...]` occurrence.
fn parse_model_specs(flags: &Flags) -> Result<Vec<(String, String)>, String> {
    let mut specs = Vec::new();
    for occurrence in flags.get_all("model") {
        for spec in occurrence.split(',') {
            let (name, path) = spec
                .split_once('=')
                .ok_or_else(|| format!("--model '{spec}' is not NAME=FILE"))?;
            if name.is_empty() || path.is_empty() {
                return Err(format!("--model '{spec}' is not NAME=FILE"));
            }
            specs.push((name.to_string(), path.to_string()));
        }
    }
    if specs.is_empty() {
        return Err("serve requires at least one --model NAME=FILE".into());
    }
    Ok(specs)
}

/// SIGTERM/SIGINT → graceful drain, not a dropped connection: the
/// handler only sets a flag (async-signal-safe); a watcher thread trips
/// the shutdown token, which stops accepting and lets the engine finish
/// queued batches under its drain deadline before the process exits.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn received() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term_signal {
    pub fn install() {}

    pub fn received() -> bool {
        false
    }
}

/// Run `drain` once a termination signal arrives; exit quietly when
/// `done` reports the server already stopped on its own.
fn spawn_term_watcher(
    drain: impl FnOnce() + Send + 'static,
    done: impl Fn() -> bool + Send + 'static,
) {
    term_signal::install();
    std::thread::spawn(move || loop {
        if term_signal::received() {
            drain();
            return;
        }
        if done() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let specs = parse_model_specs(flags)?;
    let nshards: usize = flags.parse_or("shards", 0)?;
    if nshards > 0 {
        return cmd_serve_cluster(&specs, flags, nshards);
    }
    let addr = flags.get("addr").unwrap_or("127.0.0.1:0");
    let config = ServeConfig {
        ntasks: flags.parse_or("tasks", ServeConfig::default().ntasks)?,
        max_depth: flags.parse_or("depth", ServeConfig::default().max_depth)?,
        max_batch: flags.parse_or("batch", ServeConfig::default().max_batch)?,
        cache_capacity: flags.parse_or("cache", ServeConfig::default().cache_capacity)?,
        default_deadline: Duration::from_millis(flags.parse_or(
            "deadline-ms",
            ServeConfig::default().default_deadline.as_millis() as u64,
        )?),
        ..Default::default()
    };
    let front_defaults = FrontEndConfig::default();
    let front = FrontEndConfig {
        workers: flags.parse_or("net-workers", front_defaults.workers)?,
        max_conns: flags.parse_or("max-conns", front_defaults.max_conns)?,
        legacy_threads: flags.parse_or("legacy-threads", 0u8)? != 0,
        ..front_defaults
    };
    let engine = ServeEngine::start(config);
    for (name, path) in &specs {
        let model = splatt::core::load_model_path(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        let version = engine.publish(name, model);
        println!("published {name} v{version} from {path}");
    }
    let handle = serve_with(engine, addr, front).map_err(|e| format!("{addr}: {e}"))?;
    // Tests parse the bound address from a pipe: flush past block buffering.
    println!("serving {} model(s) on {}", specs.len(), handle.addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let drain = Arc::clone(handle.engine());
    let done = Arc::clone(handle.engine());
    spawn_term_watcher(
        move || drain.shutdown_token().cancel(),
        move || done.shutdown_token().is_cancelled(),
    );
    handle.join();
    println!("server stopped");
    Ok(())
}

/// `splatt serve --shards N [--replicas M]`: a loopback cluster —
/// N×M shard workers behind one router that speaks the ordinary wire
/// protocol, so `splatt query` works unchanged against it.
fn cmd_serve_cluster(
    specs: &[(String, String)],
    flags: &Flags,
    nshards: usize,
) -> Result<(), String> {
    if specs.len() != 1 {
        return Err("cluster mode serves exactly one --model NAME=FILE".into());
    }
    let (name, path) = &specs[0];
    let shared =
        SharedModel::load(name, std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let defaults = ClusterConfig::default();
    let nreplicas: usize = flags.parse_or("replicas", defaults.nreplicas)?;
    if nreplicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    let seed: u64 = flags.parse_or("seed", defaults.seed)?;
    let config = ClusterConfig {
        nshards,
        nreplicas,
        seed,
        default_deadline: Duration::from_millis(
            flags.parse_or("deadline-ms", defaults.default_deadline.as_millis() as u64)?,
        ),
        ..defaults
    };
    let addr = flags.get("addr").unwrap_or("127.0.0.1:0");
    let cluster = LoopbackCluster::start_on(config, &shared, None, addr)
        .map_err(|e| format!("{addr}: {e}"))?;
    println!(
        "published {name} v1 from {path} on {} worker(s) \
         ({nshards} shard(s) x {nreplicas} replica(s), ring seed {seed:#x})",
        nshards * nreplicas
    );
    // Same line format as single-process serve: tests and scripts parse
    // the bound address from it.
    println!("serving 1 model(s) on {}", cluster.router_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let drain = cluster.router();
    let done = cluster.router();
    spawn_term_watcher(
        move || drain.stop_token().cancel(),
        move || done.stop_token().is_cancelled(),
    );
    cluster.join();
    println!("server stopped");
    Ok(())
}

/// `splatt cluster <addr>`: ping a running router and print its stats
/// JSON (the schema v7 `serve` object with per-shard failover counters).
fn cmd_cluster(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    match client.health().map_err(|e| format!("{addr}: {e}"))? {
        Response::Health { .. } => println!("{addr}: healthy"),
        Response::Error(code, msg) => return Err(format!("server error ({code:?}): {msg}")),
        other => return Err(format!("unexpected health response {other:?}")),
    }
    match client.stats().map_err(|e| format!("{addr}: {e}"))? {
        Response::Stats(json) => {
            println!("{json}");
            Ok(())
        }
        Response::Error(code, msg) => Err(format!("server error ({code:?}): {msg}")),
        other => Err(format!("unexpected stats response {other:?}")),
    }
}

fn parse_coord_list(spec: &str, what: &str) -> Result<Vec<u32>, String> {
    spec.split(',')
        .map(|c| {
            c.trim()
                .parse()
                .map_err(|_| format!("bad {what} '{spec}': '{c}' is not a u32"))
        })
        .collect()
}

fn cmd_query(addr: &str, op: &str, flags: &Flags) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let model = flags.get("model").unwrap_or("");
    let version: u64 = flags.parse_or("version", 0)?;
    let deadline_ms: u32 = flags.parse_or("deadline-ms", 0)?;
    let needs_model = matches!(op, "entry" | "slice" | "topk");
    if needs_model && model.is_empty() {
        return Err(format!("query {op} requires --model NAME"));
    }
    let response = match op {
        "entry" => {
            let spec = flags.get("coords").ok_or("entry requires --coords")?;
            let tuples: Vec<Vec<u32>> = spec
                .split(';')
                .map(|t| parse_coord_list(t, "--coords"))
                .collect::<Result<_, _>>()?;
            let order = tuples.first().map_or(0, Vec::len);
            if order == 0 || order > usize::from(u8::MAX) {
                return Err(format!("bad --coords '{spec}'"));
            }
            if let Some(bad) = tuples.iter().find(|t| t.len() != order) {
                return Err(format!(
                    "--coords tuples disagree on order ({order} vs {})",
                    bad.len()
                ));
            }
            let coords: Vec<u32> = tuples.into_iter().flatten().collect();
            client.entries(model, version, deadline_ms, order as u8, coords)
        }
        "slice" => {
            let mode: u8 = flags.parse_or("mode", 0)?;
            let index: u32 = flags.parse_or("index", 0)?;
            client.slice(model, version, deadline_ms, mode, index)
        }
        "topk" => {
            let mode: u8 = flags.parse_or("mode", 0)?;
            let k: u32 = flags.parse_or("k", 10)?;
            let fixed = match flags.get("fixed") {
                Some(spec) => parse_coord_list(spec, "--fixed")?,
                None => Vec::new(),
            };
            client.top_k(model, version, deadline_ms, mode, k, fixed)
        }
        "stats" => client.stats(),
        "list" => client.list(),
        "health" => client.health(),
        "shutdown" => client.shutdown(),
        other => return Err(format!("unknown query op '{other}'")),
    }
    .map_err(|e| format!("{addr}: {e}"))?;
    print_response(&response)
}

fn print_response(response: &Response) -> Result<(), String> {
    match response {
        Response::Entries(vals) | Response::Slice(vals) => {
            let mut out = std::io::BufWriter::new(std::io::stdout().lock());
            for v in vals {
                writeln!(out, "{v:.17e}").map_err(|e| e.to_string())?;
            }
            out.flush().map_err(|e| e.to_string())
        }
        Response::TopK(pairs) => {
            for (index, score) in pairs {
                println!("{index} {score:.17e}");
            }
            Ok(())
        }
        Response::Stats(json) => {
            println!("{json}");
            Ok(())
        }
        Response::Models(models) => {
            for m in models {
                println!(
                    "{} v{}: order {}, rank {}",
                    m.name, m.version, m.order, m.rank
                );
            }
            Ok(())
        }
        Response::Health { worker, shard } => {
            if *worker == u32::MAX {
                // The sentinel covers both a router front end and a
                // standalone server — neither has a shard identity.
                println!("healthy");
            } else {
                println!("healthy (worker {worker}, shard {shard})");
            }
            Ok(())
        }
        Response::Ack => {
            println!("server acknowledged shutdown");
            Ok(())
        }
        Response::Error(code, msg) => Err(format!("server error ({code:?}): {msg}")),
    }
}

fn cmd_stats(path: &str) -> Result<(), String> {
    let tensor = load(path)?;
    println!("{path}:");
    print!("{}", TensorStats::compute(&tensor));
    Ok(())
}

fn cmd_check(path: &str) -> Result<(), String> {
    let tensor = load(path)?;
    let entries = tensor.canonical_entries();
    let mut dups = 0usize;
    for w in entries.windows(2) {
        if w[0].0 == w[1].0 {
            dups += 1;
        }
    }
    let zeros = tensor.vals().iter().filter(|&&v| v == 0.0).count();
    println!(
        "{path}: order {}, {} nonzeros, {} duplicate coordinate pair(s), {} explicit zero(s)",
        tensor.order(),
        tensor.nnz(),
        dups,
        zeros
    );
    if dups > 0 {
        println!("note: duplicates are summed by CP-ALS; `coalesce` merges them");
    }
    Ok(())
}

fn cmd_generate(which: &str, flags: &Flags) -> Result<(), String> {
    let out_path = flags.get("out").ok_or("generate requires --out FILE")?;
    let seed: u64 = flags.parse_or("seed", 42)?;
    let tensor = if which == "random" {
        let dims_s = flags.get("dims").ok_or("random requires --dims IxJxK")?;
        let dims: Vec<usize> = dims_s
            .split('x')
            .map(|d| d.parse().map_err(|_| format!("bad dims '{dims_s}'")))
            .collect::<Result<_, _>>()?;
        let nnz: usize = flags.parse_or("nnz", 10_000)?;
        synth::random_uniform(&dims, nnz, seed)
    } else {
        let shape = synth::ALL_SHAPES
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(which))
            .ok_or_else(|| format!("unknown data set '{which}'"))?;
        let scale: f64 = flags.parse_or("scale", 0.01)?;
        shape.generate(scale, seed)
    };
    io::write_tns_file(&tensor, out_path).map_err(|e| format!("{out_path}: {e}"))?;
    println!("wrote {} nonzeros to {out_path}", tensor.nnz());
    print!("{}", TensorStats::compute(&tensor));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let result = match (cmd, rest.split_first()) {
        ("cpd", Some((path, flag_args))) => Flags::parse(flag_args).and_then(|f| cmd_cpd(path, &f)),
        ("complete", Some((path, flag_args))) => {
            Flags::parse(flag_args).and_then(|f| cmd_complete(path, &f))
        }
        ("predict", Some((model_path, rest2))) => match rest2.first() {
            Some(coords) => cmd_predict(model_path, coords),
            None => return usage(),
        },
        ("export-model", Some((input, flag_args))) => {
            Flags::parse(flag_args).and_then(|f| cmd_export_model(input, &f))
        }
        ("serve", _) => Flags::parse(rest).and_then(|f| cmd_serve(&f)),
        ("cluster", Some((addr, _))) => cmd_cluster(addr),
        ("query", Some((addr, rest2))) => match rest2.split_first() {
            Some((op, flag_args)) => Flags::parse(flag_args).and_then(|f| cmd_query(addr, op, &f)),
            None => return usage(),
        },
        ("ingest", Some((store_dir, rest2))) => match rest2.split_first() {
            Some((delta, flag_args)) => {
                Flags::parse(flag_args).and_then(|f| cmd_ingest(store_dir, delta, &f))
            }
            None => return usage(),
        },
        ("recover", Some((store_dir, flag_args))) => {
            Flags::parse(flag_args).and_then(|f| cmd_recover(store_dir, &f))
        }
        ("refresh", Some((store_dir, flag_args))) => {
            Flags::parse(flag_args).and_then(|f| cmd_refresh(store_dir, &f))
        }
        ("stats", Some((path, _))) => cmd_stats(path),
        ("check", Some((path, _))) => cmd_check(path),
        ("generate", Some((which, flag_args))) => {
            Flags::parse(flag_args).and_then(|f| cmd_generate(which, &f))
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
