//! Cross-crate fault-tolerance tests: the recovery invariants the fault
//! harness must uphold.
//!
//! * Any plan made only of recoverable faults converges to the
//!   fault-free fit (the numerics-preserving recoveries — absorbed
//!   delays, retries, rollbacks — are bit-identical; ridge
//!   regularization re-converges within tolerance).
//! * Kill-then-resume via checkpoints reproduces the uninterrupted run
//!   bit for bit.
//! * The profile report lists every injected fault with its recovery.

use splatt::rt::qc;
use splatt::tensor::synth;
use splatt::{try_cp_als, Checkpoint, CpalsOptions, CpalsOutput, FaultPlan, FaultRates, Matrix};

fn planted() -> splatt::SparseTensor {
    synth::planted_dense(&[18, 15, 12], 3, 0.0, 7).0
}

// Deep-convergence settings: a ridge-recovered Gram corruption leaves the
// factors well off the fixed point, so both runs must be driven all the
// way back down before their fits are comparable at 1e-6.
fn converge_opts() -> CpalsOptions {
    CpalsOptions {
        rank: 3,
        max_iters: 600,
        tolerance: 1e-14,
        ntasks: 2,
        ..Default::default()
    }
}

fn matrix_bits(m: &Matrix) -> Vec<u64> {
    (0..m.rows())
        .flat_map(|i| m.row(i).iter().map(|v| v.to_bits()))
        .collect()
}

fn assert_bit_identical(a: &CpalsOutput, b: &CpalsOutput, what: &str) {
    assert_eq!(a.fit.to_bits(), b.fit.to_bits(), "{what}: fit bits");
    assert_eq!(
        a.fits.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        b.fits.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "{what}: fit history bits"
    );
    assert_eq!(
        a.model
            .lambda
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        b.model
            .lambda
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        "{what}: lambda bits"
    );
    for (m, (fa, fb)) in a.model.factors.iter().zip(&b.model.factors).enumerate() {
        assert_eq!(matrix_bits(fa), matrix_bits(fb), "{what}: factor {m} bits");
    }
}

/// The fault-matrix property: random combinations of numerics-preserving
/// fault kinds (absorbed delays, retried collectives, rolled-back NaN
/// poisonings), injected during the first iterations, must reproduce the
/// fault-free run bit for bit — far stronger than a fit tolerance. The
/// remaining recoverable kind (non-SPD Gram, whose ridge recovery
/// legitimately perturbs numerics) is covered by the fixed-seed
/// convergence tests below.
#[test]
fn recoverable_fault_matrix_preserves_converged_fit() {
    let tensor = planted();
    let opts = CpalsOptions {
        rank: 3,
        max_iters: 12,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let clean = try_cp_als(&tensor, &opts, None).expect("fault-free run");

    qc::check("recoverable fault matrix", 10, |g| {
        // at least one kind active per case; dropped stays low so the
        // bounded retry (4 attempts) never exhausts
        let rates = FaultRates {
            straggler: if g.bool() { g.f64_in(0.1, 0.6) } else { 0.0 },
            dropped: if g.bool() { g.f64_in(0.05, 0.2) } else { 0.0 },
            nan: if g.bool() { g.f64_in(0.1, 0.4) } else { 0.0 },
            ..Default::default()
        };
        let plan = FaultPlan::new(g.u64(), rates).with_horizon(3);
        let out = try_cp_als(&tensor, &opts, Some(&plan))
            .unwrap_or_else(|e| panic!("seed {:#x}: {e}", g.seed()));
        assert!(
            !plan.any_unrecovered(),
            "seed {:#x}: unrecovered events {:?}",
            g.seed(),
            plan.events()
        );
        assert_bit_identical(&clean, &out, &format!("seed {:#x}", g.seed()));
    });
}

/// The ISSUE's acceptance scenario: one seeded plan that injects at
/// least three distinct fault kinds, still within 1e-6 of fault-free.
#[test]
fn three_fault_kinds_at_once_still_converge() {
    let tensor = planted();
    let opts = converge_opts();
    let clean = try_cp_als(&tensor, &opts, None).unwrap();
    let rates = FaultRates {
        straggler: 0.5,
        dropped: 0.15,
        nonspd: 0.5,
        nan: 0.3,
        ..Default::default()
    };
    let plan = FaultPlan::new(0xFA11, rates).with_horizon(4);
    let out = try_cp_als(&tensor, &opts, Some(&plan)).expect("plan must recover");
    let kinds: std::collections::HashSet<_> = plan.events().iter().map(|e| e.kind).collect();
    assert!(
        kinds.len() >= 3,
        "expected >= 3 distinct fault kinds, got {kinds:?}"
    );
    assert!(!plan.any_unrecovered());
    assert!(
        (out.fit - clean.fit).abs() < 1e-6,
        "faulted fit {} vs clean {}",
        out.fit,
        clean.fit
    );
}

/// Numerics-preserving recoveries (absorbed delay, retry, rollback) must
/// not change a single bit of the result, not just the converged fit.
#[test]
fn numerics_preserving_recoveries_are_bit_identical() {
    let tensor = planted();
    let opts = CpalsOptions {
        rank: 3,
        max_iters: 12,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let clean = try_cp_als(&tensor, &opts, None).unwrap();
    let rates = FaultRates {
        straggler: 0.5,
        dropped: 0.15,
        nan: 0.4,
        ..Default::default()
    };
    let plan = FaultPlan::new(0xB17, rates).with_horizon(5);
    let out = try_cp_als(&tensor, &opts, Some(&plan)).unwrap();
    assert!(plan.event_count() > 0, "plan injected nothing");
    assert_bit_identical(&clean, &out, "numerics-preserving recovery");
}

/// Kill-then-resume: a run cut short at iteration k, resumed from its
/// last checkpoint, must reproduce the uninterrupted run bit for bit.
#[test]
fn resume_from_checkpoint_is_bit_for_bit() {
    let tensor = planted();
    let dir = std::env::temp_dir().join("splatt_ft_resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let base = CpalsOptions {
        rank: 4,
        max_iters: 10,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let straight = try_cp_als(&tensor, &base, None).unwrap();

    // "crash" after 4 iterations, leaving checkpoints behind
    let killed = try_cp_als(
        &tensor,
        &CpalsOptions {
            max_iters: 4,
            checkpoint_dir: Some(dir.clone()),
            ..base.clone()
        },
        None,
    )
    .unwrap();
    assert_eq!(killed.iterations, 4);
    let latest = Checkpoint::latest_in(&dir)
        .unwrap()
        .expect("checkpoints were written");

    // resume from the latest checkpoint and finish the remaining budget
    let resumed = try_cp_als(
        &tensor,
        &CpalsOptions {
            resume_from: Some(latest),
            ..base.clone()
        },
        None,
    )
    .unwrap();
    assert_eq!(resumed.iterations, straight.iterations);
    assert_bit_identical(&straight, &resumed, "kill-then-resume");
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming mid-run must also work under fault injection: the one-shot
/// fired-site bookkeeping is keyed on (iteration, site), so a resumed
/// run re-derives exactly the faults the uninterrupted run saw after
/// iteration k, and recoverable ones still converge.
#[test]
fn resume_composes_with_fault_injection() {
    let tensor = planted();
    let dir = std::env::temp_dir().join("splatt_ft_resume_faults");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let opts = converge_opts();
    let clean = try_cp_als(&tensor, &opts, None).unwrap();

    let rates = FaultRates {
        straggler: 0.4,
        nonspd: 0.3,
        ..Default::default()
    };
    let killed = try_cp_als(
        &tensor,
        &CpalsOptions {
            max_iters: 3,
            tolerance: 0.0,
            checkpoint_dir: Some(dir.clone()),
            ..opts.clone()
        },
        Some(&FaultPlan::new(0xCAFE, rates).with_horizon(6)),
    )
    .unwrap();
    assert_eq!(killed.iterations, 3);

    let latest = Checkpoint::latest_in(&dir).unwrap().unwrap();
    let plan = FaultPlan::new(0xCAFE, rates).with_horizon(6);
    let resumed = try_cp_als(
        &tensor,
        &CpalsOptions {
            resume_from: Some(latest),
            ..opts.clone()
        },
        Some(&plan),
    )
    .unwrap();
    assert!(!plan.any_unrecovered());
    assert!(
        (resumed.fit - clean.fit).abs() < 1e-6,
        "resumed faulted fit {} vs clean {}",
        resumed.fit,
        clean.fit
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The profile report must list every injected fault with its recovery
/// action — the observability half of the fault story.
#[test]
fn profile_report_lists_every_injected_fault() {
    let tensor = planted();
    let opts = CpalsOptions {
        rank: 3,
        max_iters: 8,
        tolerance: 0.0,
        ntasks: 2,
        profile: true,
        ..Default::default()
    };
    let rates = FaultRates {
        straggler: 0.5,
        nan: 0.3,
        nonspd: 0.4,
        ..Default::default()
    };
    let plan = FaultPlan::new(0x0B5, rates).with_horizon(4);
    let out = try_cp_als(&tensor, &opts, Some(&plan)).unwrap();
    let report = out.profile.expect("profiling was enabled");
    let events = plan.events();
    assert!(!events.is_empty(), "plan injected nothing");
    assert_eq!(report.faults.len(), events.len());
    for (row, event) in report.faults.iter().zip(&events) {
        assert_eq!(row.kind, event.kind.label());
        assert_eq!(row.iteration, event.iteration);
        assert_eq!(row.site, event.site);
        assert_eq!(row.action, event.action.describe());
    }
    let json = report.to_json();
    assert!(json.contains("\"faults\""), "faults array missing: {json}");
    for event in &events {
        assert!(
            json.contains(&event.site),
            "site {} missing from JSON",
            event.site
        );
    }
}

/// Cancelling a guarded run between modes must leave a valid
/// `ckpt-*.splatt` on disk, and resuming from it must reproduce the
/// uncancelled run bit for bit (ISSUE satellite: cooperative
/// cancellation composes with checkpoint/restart).
#[test]
fn cancel_mid_run_leaves_resumable_checkpoints() {
    let tensor = planted();
    let dir = std::env::temp_dir().join("splatt_ft_cancel");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let base = CpalsOptions {
        rank: 3,
        max_iters: 12,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let straight = try_cp_als(&tensor, &base, None).unwrap();

    // the victim run is slowed by stragglers (pure latency, no
    // numerical effect) so the main thread can cancel it mid-flight
    let guard = splatt::RunGuard::unarmed();
    let handle = {
        let tensor = tensor.clone();
        let opts = CpalsOptions {
            checkpoint_dir: Some(dir.clone()),
            ..base.clone()
        };
        let guard = guard.clone();
        std::thread::spawn(move || {
            let plan = FaultPlan::new(
                0xCA9CE1,
                FaultRates {
                    straggler: 1.0,
                    ..Default::default()
                },
            )
            .with_straggler_scale(400);
            splatt::try_cp_als_guarded(&tensor, &opts, Some(&plan), Some(&guard))
        })
    };

    // wait for at least two durable checkpoints, then pull the plug
    let give_up = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let ckpts = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        if ckpts >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < give_up,
            "run never wrote two checkpoints"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    guard.cancel();

    let err = handle
        .join()
        .expect("guarded run must not panic")
        .expect_err("cancelled run must abort");
    let ab = match err {
        splatt::CpalsError::Aborted(ab) => ab,
        other => panic!("expected Aborted, got {other}"),
    };
    assert_eq!(ab.reason, splatt::TripReason::Cancelled);
    assert!(ab.iteration >= 2, "two checkpoints imply two iterations");
    let latest = ab.last_checkpoint.expect("checkpoints were written");
    assert_eq!(Some(latest.clone()), Checkpoint::latest_in(&dir).unwrap());
    // the checkpoint the abort names is itself readable and coherent
    Checkpoint::read_from(&latest).expect("abort named a valid checkpoint");

    let resumed = try_cp_als(
        &tensor,
        &CpalsOptions {
            resume_from: Some(latest),
            ..base
        },
        None,
    )
    .unwrap();
    assert_bit_identical(&straight, &resumed, "cancel-then-resume");
    std::fs::remove_dir_all(&dir).ok();
}

/// A NaN that is organically present in the input (not injected) must
/// surface as a typed error — with no plan there is nothing to roll
/// back to, and with a plan the bounded rollback budget must stop the
/// identical replays. Either way: never a panic, never a hang.
#[test]
fn organic_nan_surfaces_typed_error() {
    let mut t = splatt::SparseTensor::new(vec![3, 3, 3]);
    t.push(&[0, 0, 0], 1.0);
    t.push(&[1, 1, 1], f64::NAN);
    t.push(&[2, 2, 2], 2.0);
    let opts = CpalsOptions {
        rank: 2,
        max_iters: 3,
        tolerance: 0.0,
        ntasks: 1,
        ..Default::default()
    };
    let err = try_cp_als(&t, &opts, None).expect_err("organic NaN must fail");
    match err {
        splatt::CpalsError::Unrecovered { kind, .. } => {
            assert_eq!(kind, splatt::FaultKind::NanPoison)
        }
        other => panic!("expected Unrecovered, got {other}"),
    }
    // an armed (but never-firing) plan exhausts its rollback budget on
    // the identical replays and surfaces the same typed error
    let plan = FaultPlan::new(0x0A9, FaultRates::default());
    let err = try_cp_als(&t, &opts, Some(&plan)).expect_err("organic NaN must fail");
    assert!(matches!(
        err,
        splatt::CpalsError::Unrecovered {
            kind: splatt::FaultKind::NanPoison,
            ..
        }
    ));
}
