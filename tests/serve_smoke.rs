//! Serving smoke test: many concurrent clients hammer a loopback server
//! with a mixed query workload. Run by the `serve-smoke` CI job under
//! `--release`; also part of the normal test suite.
//!
//! Asserts: zero failed requests, zero sheds (the client count stays
//! below the admission queue limit), a sane p99, and a clean shutdown
//! via the wire `Shutdown` op.

use splatt::serve::protocol::Response;
use splatt::serve::{serve, Client, ServeConfig, ServeEngine};
use splatt::{KruskalModel, Matrix};
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 1_300; // 8 * 1300 = 10_400 total

#[test]
fn eight_clients_ten_thousand_queries_zero_failures() {
    let engine = ServeEngine::start(ServeConfig {
        ntasks: 4,
        max_depth: 64, // well above CLIENTS: nothing should shed
        cache_capacity: 128,
        ..Default::default()
    });
    let model = KruskalModel {
        lambda: vec![1.0, -0.5, 0.25],
        factors: vec![
            Matrix::random(20, 3, 31),
            Matrix::random(15, 3, 32),
            Matrix::random(10, 3, 33),
        ],
    };
    engine.publish("smoke", model);
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Vec<u64> {
                let mut client = Client::connect(&addr).expect("connect");
                let mut latencies = Vec::with_capacity(QUERIES_PER_CLIENT);
                for i in 0..QUERIES_PER_CLIENT {
                    let started = std::time::Instant::now();
                    let resp = match (c + i) % 3 {
                        0 => {
                            let coords = vec![(i % 20) as u32, (i % 15) as u32, (i % 10) as u32];
                            client.entries("smoke", 0, 0, 3, coords)
                        }
                        1 => client.slice("smoke", 0, 0, 1, (i % 15) as u32),
                        _ => client.top_k(
                            "smoke",
                            0,
                            0,
                            2,
                            5,
                            vec![(i % 20) as u32, (i % 15) as u32],
                        ),
                    }
                    .expect("transport must not fail");
                    match resp {
                        Response::Entries(v) => assert_eq!(v.len(), 1),
                        Response::Slice(v) => assert_eq!(v.len(), 20 * 10),
                        Response::TopK(v) => assert_eq!(v.len(), 5),
                        other => panic!("client {c} query {i} failed: {other:?}"),
                    }
                    latencies.push(started.elapsed().as_micros() as u64);
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::with_capacity(CLIENTS * QUERIES_PER_CLIENT);
    for w in workers {
        latencies.extend(w.join().expect("client thread must not panic"));
    }
    assert_eq!(latencies.len(), CLIENTS * QUERIES_PER_CLIENT);
    latencies.sort_unstable();
    let p99 = latencies[latencies.len() * 99 / 100];
    // Loopback round trip through admission + batching: generous bound
    // that still catches a stalled scheduler (micros).
    assert!(p99 < 2_000_000, "p99 {p99}us exceeds 2s");

    let row = engine.profile_report().serve.clone().expect("serve row");
    let answered: u64 = row.kinds.iter().map(|k| k.requests).sum();
    assert_eq!(answered as usize, CLIENTS * QUERIES_PER_CLIENT);
    assert_eq!(row.sheds, 0, "below the queue limit nothing may shed");
    assert_eq!(row.deadline_rejections, 0);
    assert!(row.batches > 0);
    assert!(row.cache_hits > 0, "repeated slices/top-ks must hit cache");

    // Clean shutdown over the wire.
    let mut closer = Client::connect(&addr).expect("connect for shutdown");
    match closer.shutdown().expect("shutdown call") {
        Response::Ack => {}
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    handle.join();
    // Post-shutdown the engine refuses work with a typed error.
    assert!(engine
        .query(
            "smoke",
            0,
            splatt::serve::Query::Entry {
                coords: vec![0, 0, 0]
            },
            None,
            &splatt::CancelToken::new(),
            || false,
        )
        .is_err());
}
