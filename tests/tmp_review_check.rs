//! Temporary review check: organic NaN in the tensor, no fault plan.
use splatt::{cp_als, CpalsOptions, SparseTensor};

#[test]
fn organic_nan_without_fault_plan() {
    let mut t = SparseTensor::new(vec![3, 3, 3]);
    t.push(&[0, 0, 0], 1.0);
    t.push(&[1, 1, 1], f64::NAN);
    t.push(&[2, 2, 2], 2.0);
    let out = cp_als(
        &t,
        &CpalsOptions {
            rank: 2,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 1,
            ..Default::default()
        },
    );
    println!("fit = {}", out.fit);
}
