//! The format differential harness: the ALTO linearized format pinned
//! against the flat-slab CSF and its nested-`Vec` construction oracle.
//!
//! Three layers of guarantee, all over qc-random tensors of orders 3-5
//! drawn from several distributions (uniform, power-law, empty,
//! singleton, duplicate-heavy):
//!
//! 1. **Bit identity.** ALTO's dim-sorted linearization walks nonzeros
//!    in exactly the order of the One-tree CSF, so on every
//!    deterministic configuration (single task for scatter kernels; any
//!    task count for the root kernel) the ALTO MTTKRP must agree with
//!    the CSF MTTKRP **bit for bit** — for every access strategy, every
//!    sync strategy, and both the generic and the rank-specialized
//!    (R in {8, 16, 32}) dispatch paths. The CSF side is itself pinned
//!    to the nested construction oracle, so the chain is
//!    `nested oracle == flat CSF == ALTO`.
//! 2. **Reference agreement.** Multi-task scatter configurations are
//!    nondeterministic in summation order, so they are held to the COO
//!    reference within 1e-8 instead.
//! 3. **Round trip.** `build -> partition -> iterate` conserves the
//!    tensor: COO round-trips canonically, the coordinate stream
//!    decodes in bounds, partitions tile the slice space monotonically,
//!    and `storage_bytes` accounts for every owned array.

use splatt::core::alto::mttkrp_alto;
use splatt::core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt::core::reference::mttkrp_coo;
use splatt::par::TaskTeam;
use splatt::rt::qc::{self, Gen};
use splatt::tensor::{synth, AltoTensor, SortVariant};
use splatt::{Csf, CsfAlloc, CsfSet, Matrix, MatrixAccess, SparseTensor};

const ALL_ACCESS: [MatrixAccess; 4] = [
    MatrixAccess::RowCopy,
    MatrixAccess::Index2D,
    MatrixAccess::PointerChecked,
    MatrixAccess::PointerZip,
];

/// Ranks that exercise every dispatch path: 3 takes the generic
/// dynamic-width kernel, 8/16/32 take the fixed-width specializations.
const RANKS: [usize; 4] = [3, 8, 16, 32];

/// A random tensor of the given order from a randomly chosen
/// distribution family.
fn gen_tensor(g: &mut Gen, order: usize) -> SparseTensor {
    let dims: Vec<usize> = (0..order).map(|_| g.usize_in(1..10)).collect();
    match g.usize_in(0..6) {
        // empty: no nonzeros at all
        0 => SparseTensor::new(dims),
        // singleton: exactly one nonzero
        1 => {
            let mut t = SparseTensor::new(dims.clone());
            let coord: Vec<u32> = dims.iter().map(|&d| g.usize_in(0..d) as u32).collect();
            t.push(&coord, g.f64_in(-5.0, 5.0));
            t
        }
        // power-law: mode indices concentrate on a few heavy slices
        2 => {
            let nnz = g.usize_in(1..150);
            let alpha = g.f64_in(1.2, 2.2);
            let seed = g.usize_in(0..1 << 30) as u64;
            synth::power_law(&dims, nnz, alpha, seed)
        }
        // duplicate-heavy: few distinct coordinates, pushed repeatedly
        3 => {
            let distinct: Vec<Vec<u32>> = (0..g.usize_in(1..6))
                .map(|_| dims.iter().map(|&d| g.usize_in(0..d) as u32).collect())
                .collect();
            let mut t = SparseTensor::new(dims);
            for _ in 0..g.usize_in(1..60) {
                let coord = g.choose(&distinct).clone();
                t.push(&coord, g.f64_in(-5.0, 5.0));
            }
            t
        }
        // uniform
        _ => {
            let mut t = SparseTensor::new(dims.clone());
            for _ in 0..g.usize_in(0..150) {
                let coord: Vec<u32> = dims.iter().map(|&d| g.usize_in(0..d) as u32).collect();
                t.push(&coord, g.f64_in(-5.0, 5.0));
            }
            t
        }
    }
}

fn gen_factors(t: &SparseTensor, rank: usize, base: u64) -> Vec<Matrix> {
    t.dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, rank, base + m as u64))
        .collect()
}

fn run_csf(
    set: &CsfSet,
    factors: &[Matrix],
    mode: usize,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) -> Matrix {
    let mut ws = MttkrpWorkspace::new(cfg, team.ntasks());
    let mut out = Matrix::zeros(set.for_mode(mode).0.dims()[mode], rank_of(factors));
    mttkrp(set, factors, mode, &mut out, &mut ws, team, cfg);
    out
}

fn run_alto(
    alto: &AltoTensor,
    factors: &[Matrix],
    mode: usize,
    team: &TaskTeam,
    cfg: &MttkrpConfig,
) -> Matrix {
    let mut ws = MttkrpWorkspace::new(cfg, team.ntasks());
    let mut out = Matrix::zeros(alto.dims()[mode], rank_of(factors));
    mttkrp_alto(alto, factors, mode, &mut out, &mut ws, team, cfg);
    out
}

fn rank_of(factors: &[Matrix]) -> usize {
    factors[0].cols()
}

/// Pin the One-tree CSF to the nested construction oracle, then pin
/// ALTO to the CSF bit for bit across the full kernel matrix on
/// deterministic configurations: every access strategy, both sync
/// strategies (privatization forced / lock pool forced), generic and
/// specialized ranks, every mode — at a single task, where even the
/// lock-pool path has a deterministic summation order.
#[test]
fn alto_mttkrp_is_bit_identical_to_pinned_csf() {
    qc::check("alto vs one-tree csf, full matrix", 40, |g| {
        let order = g.usize_in(3..6);
        let t = gen_tensor(g, order);
        let team = TaskTeam::new(1);
        let set = CsfSet::build(&t, CsfAlloc::One, &team, SortVariant::AllOpts);
        // anchor the chain: the flat CSF equals the nested oracle
        for csf in set.csfs() {
            let oracle =
                splatt::core::csf::nested::build(&t, csf.dim_perm(), &team, SortVariant::AllOpts);
            splatt::core::csf::nested::assert_equivalent(csf, &oracle);
        }
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        assert_eq!(
            alto.dim_perm(),
            set.csfs()[0].dim_perm(),
            "tree perms differ"
        );

        let rank = *g.choose(&RANKS);
        let access = *g.choose(&ALL_ACCESS);
        let specialize = g.bool();
        let factors = gen_factors(&t, rank, 0xD1FF + order as u64);
        for mode in 0..order {
            // privatized (forced) and lock pool (forced)
            for priv_threshold in [1e12, 0.0] {
                let cfg = MttkrpConfig {
                    access,
                    priv_threshold,
                    specialize,
                    ..Default::default()
                };
                let want = run_csf(&set, &factors, mode, &team, &cfg);
                let got = run_alto(&alto, &factors, mode, &team, &cfg);
                let bits =
                    |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
                assert_eq!(
                    bits(&want),
                    bits(&got),
                    "mode {mode} rank {rank} access {access:?} priv {priv_threshold} \
                     specialize {specialize}: alto diverged from csf"
                );
            }
        }
    });
}

/// The root-mode kernel owns its output rows through the slice
/// partition, so it stays bit-identical to the CSF at **any** task
/// count; generic and specialized paths must also agree with each other.
#[test]
fn alto_root_mode_is_bit_identical_at_any_task_count() {
    qc::check("alto root mode, multi-task", 40, |g| {
        let order = g.usize_in(3..6);
        let t = gen_tensor(g, order);
        let ntasks = g.usize_in(1..5);
        let team = TaskTeam::new(ntasks);
        let set = CsfSet::build(&t, CsfAlloc::One, &team, SortVariant::AllOpts);
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        let root_mode = alto.dim_perm()[0];
        let rank = *g.choose(&RANKS);
        let factors = gen_factors(&t, rank, 0xB007);
        for specialize in [false, true] {
            let cfg = MttkrpConfig {
                access: *g.choose(&ALL_ACCESS),
                specialize,
                ..Default::default()
            };
            let want = run_csf(&set, &factors, root_mode, &team, &cfg);
            let got = run_alto(&alto, &factors, root_mode, &team, &cfg);
            assert_eq!(
                want.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                got.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "root mode {root_mode} at {ntasks} tasks diverged"
            );
        }
    });
}

/// Multi-task scatter kernels reduce in task order (privatized) or lock
/// order (pool), so they are held to the COO reference within 1e-8.
#[test]
fn alto_multi_task_scatter_matches_reference() {
    qc::check("alto multi-task vs coo reference", 40, |g| {
        let order = g.usize_in(3..6);
        let t = gen_tensor(g, order);
        let ntasks = g.usize_in(2..5);
        let team = TaskTeam::new(ntasks);
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        let rank = *g.choose(&RANKS);
        let factors = gen_factors(&t, rank, 0x5CA7);
        let mode = g.usize_in(0..order);
        for priv_threshold in [1e12, 0.0] {
            let cfg = MttkrpConfig {
                access: *g.choose(&ALL_ACCESS),
                priv_threshold,
                specialize: g.bool(),
                ..Default::default()
            };
            let got = run_alto(&alto, &factors, mode, &team, &cfg);
            let want = mttkrp_coo(&t, &factors, mode);
            assert!(
                got.approx_eq(&want, 1e-8),
                "mode {mode} at {ntasks} tasks: max diff {}",
                got.max_abs_diff(&want)
            );
        }
    });
}

/// `build -> partition -> iterate` conserves the tensor and its
/// accounting: COO round-trips canonically, every decoded coordinate is
/// in bounds, partitions tile `[0, nslices]` monotonically, and
/// `storage_bytes` covers at least the value and stream arrays.
#[test]
fn alto_round_trips_and_accounts_storage() {
    qc::check("alto build/partition/iterate round trip", 48, |g| {
        let order = g.usize_in(3..6);
        let t = gen_tensor(g, order);
        let team = TaskTeam::new(g.usize_in(1..4));
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);

        assert_eq!(alto.nnz(), t.nnz());
        assert_eq!(alto.dims(), t.dims());
        assert_eq!(
            alto.to_coo().canonical_entries(),
            t.canonical_entries(),
            "alto does not round-trip to coo"
        );
        // every packed coordinate decodes in bounds, and slice counts
        // tile the nonzeros
        for x in 0..alto.nnz() {
            for level in 0..order {
                let m = alto.dim_perm()[level];
                assert!(
                    (alto.coord(x, level) as usize) < t.dims()[m],
                    "nonzero {x} level {level} out of bounds"
                );
            }
        }
        assert_eq!(alto.slice_nnz().iter().sum::<usize>(), t.nnz());

        // partitions are monotone covers of the slice space, at any width
        let nparts = g.usize_in(1..6);
        let bounds = alto.partition(nparts);
        assert_eq!(bounds.len(), nparts + 1);
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds[nparts], alto.nslices());
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "{bounds:?}");

        // storage accounting floors: the byte count must cover the
        // value array and the packed stream it owns, and partitioning
        // (a read-only query) must not change it
        let before = alto.storage_bytes();
        let floor = alto.nnz() * std::mem::size_of::<f64>()
            + alto.stream().len() * alto.stream().word_bytes();
        assert!(before >= floor, "storage_bytes {before} < floor {floor}");
        let _ = alto.partition(g.usize_in(1..6));
        assert_eq!(alto.storage_bytes(), before);
    });
}

/// The specialized fixed-width kernels are bit-identical to the generic
/// dynamic-width path on the same ALTO tensor — the invariant that makes
/// benchmark-driven dispatch between them safe.
#[test]
fn alto_specialized_dispatch_is_bit_identical_to_generic() {
    qc::check("alto specialized vs generic dispatch", 40, |g| {
        let order = g.usize_in(3..6);
        let t = gen_tensor(g, order);
        let team = TaskTeam::new(1);
        let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
        let rank = *g.choose(&[8usize, 16, 32]);
        let factors = gen_factors(&t, rank, 0xFA57);
        let mode = g.usize_in(0..order);
        for priv_threshold in [1e12, 0.0] {
            let access = *g.choose(&ALL_ACCESS);
            let run = |specialize: bool| {
                let cfg = MttkrpConfig {
                    access,
                    priv_threshold,
                    specialize,
                    ..Default::default()
                };
                run_alto(&alto, &factors, mode, &team, &cfg)
            };
            let generic = run(false);
            let specialized = run(true);
            assert_eq!(
                generic.as_slice(),
                specialized.as_slice(),
                "rank {rank} mode {mode}: specialized alto dispatch changed bits"
            );
        }
    });
}

/// A deterministic (non-qc) pin of the one structural fact the whole
/// harness rests on: ALTO's dim-sorted mode permutation equals the
/// One-tree CSF's, so both walk the same nonzero order.
#[test]
fn alto_perm_matches_one_tree_perm() {
    let t = synth::power_law(&[40, 8, 23, 15], 500, 1.6, 99);
    let team = TaskTeam::new(2);
    let set = CsfSet::build(&t, CsfAlloc::One, &team, SortVariant::AllOpts);
    let alto = AltoTensor::build(&t, &team, SortVariant::AllOpts);
    assert_eq!(set.csfs()[0].dim_perm(), alto.dim_perm());
    assert_eq!(alto.dim_perm(), &[1, 3, 2, 0]);
    let _ = Csf::build(&t, alto.dim_perm(), &team, SortVariant::AllOpts);
}
