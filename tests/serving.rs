//! End-to-end tests of the serving subsystem: qc property tests pinning
//! the batched engine to a dense-reconstruction oracle (bit-identical),
//! tie-handling and degenerate-model cases, the TCP loopback path with
//! typed errors, and steady-state allocation certification through the
//! probe schema-v5 `serve` counters.

use splatt::guard::{Deadline, RetryPolicy};
use splatt::rt::qc::{self, Gen};
use splatt::serve::protocol::{Response, WireError};
use splatt::serve::{
    classify, serve, Client, Query, QueryResult, ServeConfig, ServeEngine, ServeError, Ticket,
    Transience,
};
use splatt::{CancelToken, KruskalModel, Matrix};
use std::sync::Arc;
use std::time::Duration;

/// A random small model of the given order (dims 1..=6, rank 1..=4).
fn gen_model(g: &mut Gen, order: usize) -> KruskalModel {
    let rank = g.usize_in(1..5);
    let factors: Vec<Matrix> = (0..order)
        .map(|m| Matrix::random(g.usize_in(1..7), rank, g.u64().wrapping_add(m as u64)))
        .collect();
    KruskalModel {
        lambda: g.f64_vec(rank, -2.0, 2.0),
        factors,
    }
}

/// Dense-oracle slice fixing `mode` at `index`: free modes in increasing
/// mode order, last free mode fastest (row-major) — every value computed
/// through `KruskalModel::value_at`, the same association order the
/// kernels use, so comparisons can demand bit identity.
fn oracle_slice(model: &KruskalModel, mode: usize, index: u32) -> Vec<f64> {
    let order = model.order();
    let free: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    let dims: Vec<usize> = free.iter().map(|&m| model.factors[m].rows()).collect();
    let total: usize = dims.iter().product();
    let mut coord = vec![0u32; order];
    coord[mode] = index;
    let mut odo = vec![0usize; free.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        for (j, &m) in free.iter().enumerate() {
            coord[m] = odo[j] as u32;
        }
        out.push(model.value_at(&coord));
        for j in (0..odo.len()).rev() {
            odo[j] += 1;
            if odo[j] < dims[j] {
                break;
            }
            odo[j] = 0;
        }
    }
    out
}

/// Dense-oracle top-k: score every index along `mode`, descending score,
/// ascending index on ties.
fn oracle_topk(model: &KruskalModel, mode: usize, k: usize, fixed: &[u32]) -> Vec<(u32, f64)> {
    let order = model.order();
    let dim = model.factors[mode].rows();
    let mut coord = vec![0u32; order];
    let mut fx = fixed.iter();
    for (m, c) in coord.iter_mut().enumerate() {
        if m != mode {
            *c = *fx.next().unwrap();
        }
    }
    let mut scored: Vec<(u32, f64)> = (0..dim)
        .map(|i| {
            coord[mode] = i as u32;
            (i as u32, model.value_at(&coord))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k.min(dim));
    scored
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: value {i} differs ({g} vs {w})"
        );
    }
}

/// A random coordinate inside the model, as u32s.
fn gen_coord(g: &mut Gen, model: &KruskalModel) -> Vec<u32> {
    model
        .factors
        .iter()
        .map(|f| g.usize_in(0..f.rows()) as u32)
        .collect()
}

#[test]
fn batched_queries_match_dense_oracle_orders_3_to_5() {
    qc::check("serve batch matches dense oracle", 20, |g| {
        let order = g.usize_in(3..6);
        let model = gen_model(g, order);
        let engine = ServeEngine::start(ServeConfig {
            ntasks: g.usize_in(1..4),
            max_batch: g.usize_in(1..9),
            cache_capacity: if g.bool() { 16 } else { 0 },
            ..Default::default()
        });
        engine.publish("m", model.clone());
        let root = CancelToken::new();

        // Queue a burst of mixed queries before waiting on any of them,
        // so the batcher genuinely coalesces (same model, same kind).
        enum Expect {
            Entries(Vec<f64>),
            Slice(Vec<f64>),
            TopK(Vec<(u32, f64)>),
        }
        let mut inflight: Vec<(Ticket, Expect)> = Vec::new();
        for _ in 0..g.usize_in(4..24) {
            let (query, expect) = match g.usize_in(0..3) {
                0 => {
                    let tuples = g.usize_in(1..4);
                    let coords: Vec<u32> = (0..tuples).flat_map(|_| gen_coord(g, &model)).collect();
                    let want: Vec<f64> = coords
                        .chunks_exact(order)
                        .map(|c| model.value_at(c))
                        .collect();
                    (Query::Entry { coords }, Expect::Entries(want))
                }
                1 => {
                    let mode = g.usize_in(0..order);
                    let index = g.usize_in(0..model.factors[mode].rows()) as u32;
                    let want = oracle_slice(&model, mode, index);
                    (
                        Query::Slice {
                            mode: mode as u8,
                            index,
                        },
                        Expect::Slice(want),
                    )
                }
                _ => {
                    let mode = g.usize_in(0..order);
                    let k = g.usize_in(1..8);
                    let mut fixed = gen_coord(g, &model);
                    fixed.remove(mode);
                    let want = oracle_topk(&model, mode, k, &fixed);
                    (
                        Query::TopK {
                            mode: mode as u8,
                            k: k as u32,
                            fixed,
                        },
                        Expect::TopK(want),
                    )
                }
            };
            let ticket = engine
                .submit("m", 0, query, None, &root)
                .expect("submit should succeed");
            inflight.push((ticket, expect));
        }
        for (ticket, expect) in inflight {
            let got = engine.wait(ticket, || false).expect("query should succeed");
            match (got, expect) {
                (QueryResult::Entries(got), Expect::Entries(want)) => {
                    assert_bits_eq(&got, &want, "entry");
                }
                (QueryResult::Slice(got), Expect::Slice(want)) => {
                    assert_bits_eq(&got, &want, "slice");
                }
                (QueryResult::TopK(got), Expect::TopK(want)) => {
                    assert_eq!(got.len(), want.len(), "top-k length");
                    for (g_pair, w_pair) in got.iter().zip(&want) {
                        assert_eq!(g_pair.0, w_pair.0, "top-k index");
                        assert_eq!(g_pair.1.to_bits(), w_pair.1.to_bits(), "top-k score");
                    }
                }
                _ => panic!("result kind does not match query kind"),
            }
        }
        engine.shutdown();
    });
}

#[test]
fn top_k_breaks_ties_by_ascending_index() {
    // Rank-1 model whose mode-0 column is constant: every index along
    // mode 0 scores identically, so top-k must come back 0,1,2,...
    let model = KruskalModel {
        lambda: vec![2.0],
        factors: vec![
            Matrix::from_vec(5, 1, vec![0.5; 5]),
            Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]),
        ],
    };
    let engine = ServeEngine::start(ServeConfig::default());
    engine.publish("ties", model);
    let root = CancelToken::new();
    let got = engine
        .query(
            "ties",
            0,
            Query::TopK {
                mode: 0,
                k: 4,
                fixed: vec![1],
            },
            None,
            &root,
            || false,
        )
        .expect("top-k should succeed");
    match got {
        QueryResult::TopK(pairs) => {
            let indices: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            assert_eq!(indices, vec![0, 1, 2, 3], "ties must resolve ascending");
        }
        other => panic!("expected top-k, got {other:?}"),
    }
    engine.shutdown();
}

#[test]
fn empty_and_singleton_models_serve_without_panicking() {
    // Rank-0 "empty" model: every reconstruction is an empty sum = 0.0.
    let empty = KruskalModel {
        lambda: vec![],
        factors: vec![
            Matrix::zeros(3, 0),
            Matrix::zeros(2, 0),
            Matrix::zeros(4, 0),
        ],
    };
    // All-singleton dims at rank 1.
    let singleton = KruskalModel {
        lambda: vec![3.0],
        factors: vec![
            Matrix::from_vec(1, 1, vec![0.5]),
            Matrix::from_vec(1, 1, vec![4.0]),
        ],
    };
    let engine = ServeEngine::start(ServeConfig::default());
    engine.publish("empty", empty.clone());
    engine.publish("one", singleton.clone());
    let root = CancelToken::new();

    match engine
        .query(
            "empty",
            0,
            Query::Slice { mode: 1, index: 0 },
            None,
            &root,
            || false,
        )
        .expect("empty-model slice should succeed")
    {
        QueryResult::Slice(vals) => {
            assert_eq!(vals.len(), 12, "3x4 free block");
            // An empty rank sum is std's empty f64 sum — compare bits to
            // the same oracle, not to a hardcoded +0.0.
            let want = oracle_slice(&empty, 1, 0);
            assert_bits_eq(&vals, &want, "empty slice");
        }
        other => panic!("expected slice, got {other:?}"),
    }

    match engine
        .query(
            "one",
            0,
            Query::TopK {
                mode: 0,
                k: 10,
                fixed: vec![0],
            },
            None,
            &root,
            || false,
        )
        .expect("singleton top-k should succeed")
    {
        QueryResult::TopK(pairs) => {
            assert_eq!(pairs.len(), 1, "k clamps to the dimension");
            assert_eq!(pairs[0].0, 0);
            assert_eq!(pairs[0].1.to_bits(), singleton.value_at(&[0, 0]).to_bits());
        }
        other => panic!("expected top-k, got {other:?}"),
    }

    match engine
        .query(
            "empty",
            0,
            Query::Entry {
                coords: vec![0, 0, 0, 2, 1, 3],
            },
            None,
            &root,
            || false,
        )
        .expect("empty-model entries should succeed")
    {
        QueryResult::Entries(vals) => assert_eq!(vals, vec![0.0, 0.0]),
        other => panic!("expected entries, got {other:?}"),
    }
    engine.shutdown();
}

fn demo_engine() -> Arc<ServeEngine> {
    let engine = ServeEngine::start(ServeConfig {
        ntasks: 2,
        cache_capacity: 32,
        ..Default::default()
    });
    let model = KruskalModel {
        lambda: vec![1.5, -0.25, 0.75],
        factors: vec![
            Matrix::random(6, 3, 11),
            Matrix::random(5, 3, 12),
            Matrix::random(4, 3, 13),
        ],
    };
    engine.publish("demo", model);
    engine
}

#[test]
fn tcp_loopback_answers_match_oracle_and_errors_are_typed() {
    let engine = demo_engine();
    let model = engine.registry().get("demo", 0).unwrap().model.clone();
    let handle = serve(engine, "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Entries are bit-identical to the dense oracle across the wire.
    let coords = vec![0, 0, 0, 5, 4, 3, 2, 1, 0];
    match client.entries("demo", 0, 0, 3, coords.clone()).unwrap() {
        Response::Entries(vals) => {
            let want: Vec<f64> = coords.chunks_exact(3).map(|c| model.value_at(c)).collect();
            assert_bits_eq(&vals, &want, "wire entries");
        }
        other => panic!("expected entries, got {other:?}"),
    }

    // Slices too.
    match client.slice("demo", 0, 0, 1, 2).unwrap() {
        Response::Slice(vals) => assert_bits_eq(&vals, &oracle_slice(&model, 1, 2), "wire slice"),
        other => panic!("expected slice, got {other:?}"),
    }

    // Top-k with ties handled like the oracle.
    match client.top_k("demo", 0, 0, 2, 3, vec![1, 1]).unwrap() {
        Response::TopK(pairs) => {
            let want = oracle_topk(&model, 2, 3, &[1, 1]);
            assert_eq!(pairs, want);
        }
        other => panic!("expected top-k, got {other:?}"),
    }

    // Unknown model -> typed ModelNotFound, connection stays usable.
    match client.slice("nope", 0, 0, 0, 0).unwrap() {
        Response::Error(WireError::ModelNotFound, _) => {}
        other => panic!("expected ModelNotFound, got {other:?}"),
    }

    // Bad mode -> typed BadRequest.
    match client.slice("demo", 0, 0, 9, 0).unwrap() {
        Response::Error(WireError::BadRequest, _) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // List and stats still answer on the same connection.
    match client.list().unwrap() {
        Response::Models(models) => {
            assert_eq!(models.len(), 1);
            assert_eq!(models[0].name, "demo");
            assert_eq!(models[0].order, 3);
            assert_eq!(models[0].rank, 3);
        }
        other => panic!("expected model list, got {other:?}"),
    }
    match client.stats().unwrap() {
        Response::Stats(json) => {
            assert!(
                json.contains("\"schema\": \"splatt-profile-v10\""),
                "{json}"
            );
            assert!(json.contains("\"serve\": {"), "{json}");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Wire shutdown: acked, then the server drains and joins cleanly.
    match client.shutdown().unwrap() {
        Response::Ack => {}
        other => panic!("expected ack, got {other:?}"),
    }
    handle.join();
}

#[test]
fn deadline_expired_requests_are_typed_not_hung() {
    let engine = demo_engine();
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    // A 1 ms deadline on a cold engine loses the race against the
    // batcher often enough; either outcome must be a typed answer.
    let started = std::time::Instant::now();
    let resp = client.slice("demo", 0, 1, 0, 1).unwrap();
    assert!(
        matches!(
            resp,
            Response::Slice(_) | Response::Error(WireError::DeadlineExpired, _)
        ),
        "got {resp:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline-bounded request must not hang"
    );
    handle.shutdown();
}

#[test]
fn steady_state_queries_are_allocation_free_after_warmup() {
    let engine = ServeEngine::start(ServeConfig {
        ntasks: 2,
        cache_capacity: 0, // force every query through the kernels
        ..Default::default()
    });
    let model = KruskalModel {
        lambda: vec![1.0, 2.0],
        factors: vec![
            Matrix::random(8, 2, 21),
            Matrix::random(7, 2, 22),
            Matrix::random(6, 2, 23),
        ],
    };
    engine.publish("m", model);
    let root = CancelToken::new();
    let run_mix = |rounds: usize| {
        for i in 0..rounds {
            let mode = (i % 3) as u8;
            engine
                .query(
                    "m",
                    0,
                    Query::Slice {
                        mode,
                        index: (i % 6) as u32,
                    },
                    None,
                    &root,
                    || false,
                )
                .expect("slice");
            engine
                .query(
                    "m",
                    0,
                    Query::TopK {
                        mode,
                        k: 4,
                        fixed: vec![0; 2],
                    },
                    None,
                    &root,
                    || false,
                )
                .expect("top-k");
        }
    };
    run_mix(12); // warm-up: arenas grow to their high-water marks
    let warm = engine
        .profile_report()
        .serve
        .expect("serve row")
        .arena_growth_allocs;
    run_mix(25); // steady state: the same shapes again
    let after = engine
        .profile_report()
        .serve
        .expect("serve row")
        .arena_growth_allocs;
    assert_eq!(
        warm, after,
        "query arenas must not grow after warm-up (probe v5 certification)"
    );
    engine.shutdown();
}

// ---- graceful drain (shutdown must not drop admitted work) ----

#[test]
fn shutdown_drains_queued_queries_instead_of_dropping_them() {
    let engine = demo_engine();
    let model = engine.registry().get("demo", 0).unwrap().model.clone();
    let root = CancelToken::new();
    let mut tickets = Vec::new();
    for i in 0..12u32 {
        let index = i % 5;
        let ticket = engine
            .submit("demo", 0, Query::Slice { mode: 1, index }, None, &root)
            .expect("submit before shutdown");
        tickets.push((index, ticket));
    }
    // Trip shutdown while the burst is still queued: everything already
    // admitted must drain to a real answer, not fail mid-flight.
    let drainer = Arc::clone(&engine);
    let shutdown = std::thread::spawn(move || drainer.shutdown());
    for (index, ticket) in tickets {
        match engine.wait(ticket, || false) {
            Ok(QueryResult::Slice(vals)) => {
                assert_bits_eq(&vals, &oracle_slice(&model, 1, index), "drained slice");
            }
            other => panic!("expected drained answer, got {other:?}"),
        }
    }
    shutdown.join().unwrap();
    // And the drain deadline is a real backstop: post-shutdown
    // submissions are rejected typed, immediately.
    match engine.submit("demo", 0, Query::Slice { mode: 1, index: 0 }, None, &root) {
        Err(ServeError::ShuttingDown) => {}
        Err(other) => panic!("expected ShuttingDown, got {other:?}"),
        Ok(_) => panic!("post-shutdown submit must be rejected"),
    }
}

#[test]
fn open_connections_get_complete_frames_across_shutdown() {
    let engine = demo_engine();
    let model = engine.registry().get("demo", 0).unwrap().model.clone();
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr().to_string();
    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(&addr).unwrap()).collect();
    // Every connection completes a query first, so all four are live
    // inside the server when shutdown trips.
    for client in clients.iter_mut() {
        match client.slice("demo", 0, 0, 1, 0).unwrap() {
            Response::Slice(vals) => assert_bits_eq(&vals, &oracle_slice(&model, 1, 0), "warm"),
            other => panic!("expected slice, got {other:?}"),
        }
    }
    handle.request_shutdown();
    // A racing request either gets a *complete* frame (a drained answer,
    // bit-identical, or typed ShuttingDown) or a clean connection close —
    // never a torn half-written frame, which would decode as garbage.
    for (i, client) in clients.iter_mut().enumerate() {
        let index = (i % 5) as u32;
        match client.slice("demo", 0, 0, 1, index) {
            Ok(Response::Slice(vals)) => {
                assert_bits_eq(
                    &vals,
                    &oracle_slice(&model, 1, index),
                    "post-shutdown slice",
                );
            }
            Ok(Response::Error(WireError::ShuttingDown, _)) => {}
            Ok(other) => panic!("expected slice or ShuttingDown, got {other:?}"),
            Err(_) => {} // clean close: the conn thread had already exited
        }
    }
    handle.join();
}

// ---- client retry: transient vs permanent classification ----

#[test]
fn transience_classification_matches_the_retry_contract() {
    for code in [
        WireError::Overloaded,
        WireError::ShuttingDown,
        WireError::Internal,
        WireError::Cancelled,
    ] {
        assert_eq!(classify(code), Transience::Transient, "{code:?}");
    }
    for code in [
        WireError::BadRequest,
        WireError::ModelNotFound,
        WireError::DeadlineExpired,
        WireError::Degraded,
    ] {
        assert_eq!(classify(code), Transience::Permanent, "{code:?}");
    }
}

#[test]
fn call_with_retry_returns_permanent_errors_immediately() {
    let engine = demo_engine();
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    let policy = RetryPolicy {
        max_attempts: 5,
        base: Duration::from_millis(200),
        cap: Duration::from_secs(1),
    };
    let deadline = Deadline::after(Duration::from_secs(5));
    let started = std::time::Instant::now();
    let resp = client
        .call_with_retry(
            &splatt::serve::protocol::Request {
                deadline_ms: 0,
                model: "nope".into(),
                version: 0,
                body: splatt::serve::protocol::RequestBody::Slice { mode: 0, index: 0 },
            },
            &policy,
            &deadline,
        )
        .expect("transport is healthy");
    match resp {
        Response::Error(WireError::ModelNotFound, _) => {}
        other => panic!("expected ModelNotFound, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(150),
        "permanent errors must not burn backoff budget"
    );
    handle.shutdown();
}

#[test]
fn call_with_retry_backs_off_on_overload_then_surfaces_the_typed_error() {
    // max_depth 0 sheds everything: every attempt comes back Overloaded,
    // a transient error, so the client should retry with backoff and
    // finally surface the typed error — not an untyped failure.
    let engine = ServeEngine::start(ServeConfig {
        max_depth: 0,
        ..Default::default()
    });
    engine.publish(
        "m",
        KruskalModel {
            lambda: vec![1.0],
            factors: vec![Matrix::random(3, 1, 1), Matrix::random(3, 1, 2)],
        },
    );
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(handle.addr().to_string()).expect("connect");
    let policy = RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(40),
    };
    let deadline = Deadline::after(Duration::from_secs(5));
    let started = std::time::Instant::now();
    let resp = client
        .call_with_retry(
            &splatt::serve::protocol::Request {
                deadline_ms: 0,
                model: "m".into(),
                version: 0,
                body: splatt::serve::protocol::RequestBody::Slice { mode: 1, index: 0 },
            },
            &policy,
            &deadline,
        )
        .expect("transport is healthy");
    match resp {
        Response::Error(WireError::Overloaded, _) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Two backoff sleeps happened between the three attempts: 10 + 20 ms.
    assert!(
        started.elapsed() >= Duration::from_millis(25),
        "overloaded retries skipped their backoff ({:?})",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn call_with_retry_gives_up_cleanly_when_the_server_is_gone() {
    let engine = demo_engine();
    let handle = serve(Arc::clone(&engine), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    handle.shutdown(); // server fully gone; the port refuses connections
    let policy = RetryPolicy {
        max_attempts: 3,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
    };
    let deadline = Deadline::after(Duration::from_secs(2));
    let err = client
        .call_with_retry(
            &splatt::serve::protocol::Request {
                deadline_ms: 0,
                model: String::new(),
                version: 0,
                body: splatt::serve::protocol::RequestBody::List,
            },
            &policy,
            &deadline,
        )
        .expect_err("no server to answer");
    // A typed io error after bounded retries — never a hang.
    let _ = err;
}

// ---- registry evict racing a query storm ----

#[test]
fn evicted_version_never_yields_stale_hits_or_torn_reads() {
    qc::check("evict during query storm", 8, |g| {
        let engine = ServeEngine::start(ServeConfig {
            ntasks: 2,
            cache_capacity: 32,
            ..Default::default()
        });
        let v1 = gen_model(g, 3);
        // v2 shares v1's shapes (the storm's slice indices must be valid
        // for both versions) but carries different values, so a stale v1
        // answer on a v2-pinned query cannot pass the bit check.
        let v2 = KruskalModel {
            lambda: g.f64_vec(v1.rank(), -2.0, 2.0),
            factors: v1
                .factors
                .iter()
                .map(|f| Matrix::random(f.rows(), f.cols(), g.u64().wrapping_add(1000)))
                .collect(),
        };
        assert_eq!(engine.publish("m", v1.clone()), 1);
        assert_eq!(engine.publish("m", v2.clone()), 2);
        // Pre-generate the storm workload: Gen stays on this thread.
        let slices: Vec<u32> = (0..64)
            .map(|_| g.usize_in(0..v1.factors[1].rows()) as u32)
            .collect();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let storm = |pin_version: u64, oracle: &'static str| {
                let engine = Arc::clone(&engine);
                let slices = slices.clone();
                let stop = &stop;
                let v1 = &v1;
                let v2 = &v2;
                move || {
                    let root = CancelToken::new();
                    let mut i = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let index = slices[i % slices.len()];
                        i += 1;
                        let got = engine.query(
                            "m",
                            pin_version,
                            Query::Slice { mode: 1, index },
                            None,
                            &root,
                            || false,
                        );
                        match got {
                            Ok(QueryResult::Slice(vals)) => {
                                // Any answer must be the pinned version's,
                                // bit for bit — a v2 value on a v1 query
                                // (or vice versa) is a stale or torn read.
                                let model = if pin_version == 1 { v1 } else { v2 };
                                assert_bits_eq(&vals, &oracle_slice(model, 1, index), oracle);
                            }
                            Err(ServeError::ModelNotFound { version, .. }) => {
                                assert_eq!(version, 1, "only the evicted version may vanish");
                            }
                            other => panic!("unexpected storm outcome: {other:?}"),
                        }
                    }
                }
            };
            let t1 = scope.spawn(storm(1, "pinned v1"));
            let t2 = scope.spawn(storm(2, "pinned v2"));
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(engine.evict("m", 1), 1, "evict v1 mid-storm");
            std::thread::sleep(Duration::from_millis(10));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            t1.join().unwrap();
            t2.join().unwrap();
        });
        // After the evict settles, v1 is gone for good (no cache
        // resurrection) and v2 still answers bit-identically.
        let root = CancelToken::new();
        match engine.query(
            "m",
            1,
            Query::Slice {
                mode: 1,
                index: slices[0],
            },
            None,
            &root,
            || false,
        ) {
            Err(ServeError::ModelNotFound { version: 1, .. }) => {}
            other => panic!("evicted version must stay gone, got {other:?}"),
        }
        match engine.query(
            "m",
            2,
            Query::Slice {
                mode: 1,
                index: slices[0],
            },
            None,
            &root,
            || false,
        ) {
            Ok(QueryResult::Slice(vals)) => {
                assert_bits_eq(&vals, &oracle_slice(&v2, 1, slices[0]), "v2 after evict");
            }
            other => panic!("surviving version must answer, got {other:?}"),
        }
        engine.shutdown();
    });
}
