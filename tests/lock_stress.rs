//! Deterministic concurrency stress test of the lock pool under every
//! strategy, with the observability counters attached.
//!
//! The workload mirrors the MTTKRP scatter phase: every task walks its
//! share of (row, value) updates and adds into a shared table under the
//! pool lock that hashes the row. Verified invariants:
//!
//! * the summed table matches a serial replay exactly (values are small
//!   integers, so f64 addition is associative on this input and any
//!   interleaving must produce the identical result),
//! * every acquisition is matched by a release,
//! * accumulated wait time is monotone across runs on shared counters.
//!
//! The test avoids timing- or core-count-dependent contention assertions
//! (CI boxes may be single-core); forcing actual lock contention is the
//! job of `splatt-locks`' own deterministic blocking tests.

use splatt::locks::{LockPool, LockStrategy};
use splatt::par::TaskTeam;
use splatt::probe::LockCounters;
use splatt::rt::rng::{RngExt, SeedableRng, StdRng};
use std::sync::Arc;

const ROWS: usize = 64;
const COLS: usize = 4;
const UPDATES_PER_TASK: usize = 2_000;
const NTASKS: usize = 4;

/// Per-task update streams: (row, integer-valued delta).
fn make_updates(seed: u64) -> Vec<Vec<(usize, f64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..NTASKS)
        .map(|_| {
            (0..UPDATES_PER_TASK)
                .map(|_| {
                    let row = rng.random_range(0..ROWS);
                    let delta = rng.random_range(1..8i32) as f64;
                    (row, delta)
                })
                .collect()
        })
        .collect()
}

fn serial_result(updates: &[Vec<(usize, f64)>]) -> Vec<f64> {
    let mut table = vec![0.0f64; ROWS * COLS];
    for stream in updates {
        for &(row, delta) in stream {
            for c in 0..COLS {
                table[row * COLS + c] += delta;
            }
        }
    }
    table
}

/// A shared table written under pool locks from a coforall.
struct SharedTable(std::cell::UnsafeCell<Vec<f64>>);
// Safety: rows are only mutated while the pool lock hashing that row is
// held, which serializes writers per row.
unsafe impl Sync for SharedTable {}

impl SharedTable {
    /// # Safety
    /// The caller must hold the pool lock covering every row it touches
    /// through the returned reference.
    #[allow(clippy::mut_from_ref)]
    unsafe fn rows(&self) -> &mut Vec<f64> {
        unsafe { &mut *self.0.get() }
    }
}

fn parallel_result(updates: &[Vec<(usize, f64)>], pool: &LockPool, team: &TaskTeam) -> Vec<f64> {
    let table = SharedTable(std::cell::UnsafeCell::new(vec![0.0f64; ROWS * COLS]));
    let shared = &table;
    team.coforall(|tid| {
        for &(row, delta) in &updates[tid] {
            let _guard = pool.lock(row);
            // Safety: the pool lock for `row` is held; no other task can
            // be inside this row's critical section.
            let t = unsafe { shared.rows() };
            for c in 0..COLS {
                t[row * COLS + c] += delta;
            }
        }
    });
    table.0.into_inner()
}

#[test]
fn pool_serializes_hashed_row_updates_under_every_strategy() {
    let updates = make_updates(0xD00D);
    let expect = serial_result(&updates);
    let total_updates = (NTASKS * UPDATES_PER_TASK) as u64;
    let team = TaskTeam::new(NTASKS);

    for strategy in [LockStrategy::Spin, LockStrategy::Sleep, LockStrategy::Os] {
        // a small pool forces many rows to alias onto each lock slot
        let mut pool = LockPool::new(strategy, 8);
        let counters = Arc::new(LockCounters::new());
        pool.set_counters(Some(Arc::clone(&counters)));

        let got = parallel_result(&updates, &pool, &team);
        assert_eq!(got, expect, "{strategy:?}: parallel result diverged");

        let stats = counters.snapshot();
        assert_eq!(
            stats.acquisitions, total_updates,
            "{strategy:?}: every update takes exactly one lock"
        );
        assert_eq!(
            stats.acquisitions, stats.releases,
            "{strategy:?}: unbalanced acquire/release"
        );

        // wait time accumulates monotonically across runs
        let wait_after_first = stats.wait_nanos;
        let spins_after_first = stats.spin_iters;
        let got = parallel_result(&updates, &pool, &team);
        assert_eq!(got, expect, "{strategy:?}: second run diverged");
        let stats2 = counters.snapshot();
        assert_eq!(stats2.acquisitions, 2 * total_updates);
        assert_eq!(stats2.acquisitions, stats2.releases);
        assert!(
            stats2.wait_nanos >= wait_after_first,
            "{strategy:?}: wait time went backwards"
        );
        assert!(
            stats2.spin_iters >= spins_after_first,
            "{strategy:?}: spin count went backwards"
        );
    }
}

#[test]
fn detached_counters_leave_pool_functional() {
    let updates = make_updates(0xFACE);
    let expect = serial_result(&updates);
    let team = TaskTeam::new(NTASKS);

    let mut pool = LockPool::new(LockStrategy::Spin, 8);
    let counters = Arc::new(LockCounters::new());
    pool.set_counters(Some(Arc::clone(&counters)));
    let _ = parallel_result(&updates, &pool, &team);
    let recorded = counters.snapshot().acquisitions;
    assert!(recorded > 0);

    // detach: the pool keeps working and the counters stop moving
    pool.set_counters(None);
    let got = parallel_result(&updates, &pool, &team);
    assert_eq!(got, expect);
    assert_eq!(counters.snapshot().acquisitions, recorded);
}
