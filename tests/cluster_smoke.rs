//! Cluster smoke: a sharded, replicated loopback cluster under a
//! multi-client query storm with deterministic fault injection. Run by
//! the `cluster-smoke` CI job under `--release`; also part of the
//! normal test suite.
//!
//! The headline test kills one shard replica at 50% storm progress
//! (per the `NetFaultPlan` schedule) while eight clients hammer the
//! router with every query shape. Every answer must be bit-identical
//! to the dense single-process oracle or a typed
//! `Degraded`/`Overloaded` frame — never a hang, panic, or untyped
//! error.

use splatt::faults::{FaultPlan, FaultRates, NetFaultPlan};
use splatt::serve::cluster::{ClusterConfig, LoopbackCluster, ShardRing};
use splatt::serve::protocol::{Response, WireError};
use splatt::serve::{Client, SharedModel};
use splatt::{KruskalModel, Matrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 60;
const STORM_SEED: u64 = 0xBADC_0DE5;

fn smoke_model() -> KruskalModel {
    KruskalModel {
        lambda: vec![1.25, -0.5, 0.125],
        factors: vec![
            Matrix::random(40, 3, 71),
            Matrix::random(9, 3, 72),
            Matrix::random(7, 3, 73),
        ],
    }
}

/// Dense oracle for one entry.
fn oracle_entry(model: &KruskalModel, coord: &[u32]) -> f64 {
    model.value_at(coord)
}

/// Dense oracle for a slice (free modes ascending, last fastest).
fn oracle_slice(model: &KruskalModel, mode: usize, index: u32) -> Vec<f64> {
    let order = model.order();
    let free: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    let dims: Vec<usize> = free.iter().map(|&m| model.factors[m].rows()).collect();
    let total: usize = dims.iter().product();
    let mut coord = vec![0u32; order];
    coord[mode] = index;
    let mut odo = vec![0usize; free.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        for (j, &m) in free.iter().enumerate() {
            coord[m] = odo[j] as u32;
        }
        out.push(model.value_at(&coord));
        for j in (0..odo.len()).rev() {
            odo[j] += 1;
            if odo[j] < dims[j] {
                break;
            }
            odo[j] = 0;
        }
    }
    out
}

/// Dense oracle for top-k: descending score, ascending index on ties.
fn oracle_topk(model: &KruskalModel, mode: usize, k: usize, fixed: &[u32]) -> Vec<(u32, f64)> {
    let order = model.order();
    let dim = model.factors[mode].rows();
    let mut coord = vec![0u32; order];
    let mut fx = fixed.iter();
    for (m, c) in coord.iter_mut().enumerate() {
        if m != mode {
            *c = *fx.next().unwrap();
        }
    }
    let mut scored: Vec<(u32, f64)> = (0..dim)
        .map(|i| {
            coord[mode] = i as u32;
            (i as u32, model.value_at(&coord))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k.min(dim));
    scored
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: value {i} differs ({g} vs {w})"
        );
    }
}

fn smoke_config() -> ClusterConfig {
    ClusterConfig {
        nshards: 3,
        nreplicas: 2,
        default_deadline: Duration::from_secs(3),
        health_interval: Duration::from_millis(10),
        ..Default::default()
    }
}

fn topk_pairs_bits_eq(got: &[(u32, f64)], want: &[(u32, f64)], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.0, w.0, "{what}: index");
        assert_eq!(g.1.to_bits(), w.1.to_bits(), "{what}: score bits");
    }
}

#[test]
fn calm_cluster_answers_every_query_shape_bit_identically() {
    let model = smoke_model();
    let shared = SharedModel::from_model("demo", model.clone());
    let cluster = LoopbackCluster::start(smoke_config(), &shared, None).expect("cluster starts");
    let mut client = Client::connect(cluster.router_addr()).expect("connect to router");

    // Entries spanning several shards in one batch.
    let coords = vec![0, 0, 0, 13, 5, 3, 27, 8, 6, 39, 1, 2];
    match client.entries("demo", 0, 0, 3, coords.clone()).unwrap() {
        Response::Entries(vals) => {
            let want: Vec<f64> = coords
                .chunks_exact(3)
                .map(|c| oracle_entry(&model, c))
                .collect();
            assert_bits_eq(&vals, &want, "cluster entries");
        }
        other => panic!("expected entries, got {other:?}"),
    }

    // Mode-0 slice: routed whole to the owner shard.
    match client.slice("demo", 0, 0, 0, 17).unwrap() {
        Response::Slice(vals) => {
            assert_bits_eq(&vals, &oracle_slice(&model, 0, 17), "mode-0 slice");
        }
        other => panic!("expected slice, got {other:?}"),
    }

    // Mode-1 slice: scattered to every shard and stitched at the router.
    match client.slice("demo", 0, 0, 1, 4).unwrap() {
        Response::Slice(vals) => {
            assert_bits_eq(&vals, &oracle_slice(&model, 1, 4), "stitched slice");
        }
        other => panic!("expected slice, got {other:?}"),
    }

    // Mode-0 top-k: per-shard partials merged at the router.
    match client.top_k("demo", 0, 0, 0, 7, vec![2, 3]).unwrap() {
        Response::TopK(pairs) => {
            topk_pairs_bits_eq(&pairs, &oracle_topk(&model, 0, 7, &[2, 3]), "merged top-k");
        }
        other => panic!("expected top-k, got {other:?}"),
    }

    // Mode-2 top-k: routed whole to the owner of the fixed mode-0 row.
    match client.top_k("demo", 0, 0, 2, 4, vec![11, 3]).unwrap() {
        Response::TopK(pairs) => {
            topk_pairs_bits_eq(&pairs, &oracle_topk(&model, 2, 4, &[11, 3]), "owner top-k");
        }
        other => panic!("expected top-k, got {other:?}"),
    }

    // The router answers the health and stats ops itself.
    match client.health().unwrap() {
        Response::Health { worker, shard } => {
            assert_eq!((worker, shard), (u32::MAX, u32::MAX), "router identity");
        }
        other => panic!("expected health, got {other:?}"),
    }
    match client.stats().unwrap() {
        Response::Stats(json) => {
            assert!(
                json.contains("\"schema\": \"splatt-profile-v10\""),
                "{json}"
            );
            assert!(json.contains("\"shards\": ["), "{json}");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn shard_kill_storm_fails_over_without_untyped_errors() {
    let model = smoke_model();
    let shared = SharedModel::from_model("demo", model.clone());
    // Shard 1, replica 0 is rank 1*2+0 = 2; its sibling (rank 3)
    // survives, so every hash range stays covered after the kill.
    let killed_rank = 2usize;
    let plan = Arc::new(
        NetFaultPlan::new(FaultPlan::new(
            STORM_SEED,
            FaultRates {
                straggler: 0.01,
                corrupt: 0.01,
                ..Default::default()
            },
        ))
        .with_kill(killed_rank, 0.5),
    );
    let mut cluster = LoopbackCluster::start(smoke_config(), &shared, Some(Arc::clone(&plan)))
        .expect("cluster starts");
    let addr = cluster.router_addr();
    let router = cluster.router();

    let completed = AtomicUsize::new(0);
    let degraded = AtomicUsize::new(0);
    let overloaded = AtomicUsize::new(0);
    let total = CLIENTS * QUERIES_PER_CLIENT;

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..CLIENTS {
            let model = &model;
            let completed = &completed;
            let degraded = &degraded;
            let overloaded = &overloaded;
            clients.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to router");
                for i in 0..QUERIES_PER_CLIENT {
                    let resp = match (c + i) % 5 {
                        0 => {
                            let coord =
                                vec![((c * 7 + i) % 40) as u32, (i % 9) as u32, (i % 7) as u32];
                            let want = oracle_entry(model, &coord);
                            match client.entries("demo", 0, 0, 3, coord).unwrap() {
                                Response::Entries(vals) => {
                                    assert_bits_eq(&vals, &[want], "storm entry");
                                    None
                                }
                                other => Some(other),
                            }
                        }
                        1 => {
                            let index = ((c * 11 + i) % 40) as u32;
                            match client.slice("demo", 0, 0, 0, index).unwrap() {
                                Response::Slice(vals) => {
                                    assert_bits_eq(
                                        &vals,
                                        &oracle_slice(model, 0, index),
                                        "storm mode-0 slice",
                                    );
                                    None
                                }
                                other => Some(other),
                            }
                        }
                        2 => {
                            let index = (i % 9) as u32;
                            match client.slice("demo", 0, 0, 1, index).unwrap() {
                                Response::Slice(vals) => {
                                    assert_bits_eq(
                                        &vals,
                                        &oracle_slice(model, 1, index),
                                        "storm stitched slice",
                                    );
                                    None
                                }
                                other => Some(other),
                            }
                        }
                        3 => {
                            let fixed = vec![(i % 9) as u32, (i % 7) as u32];
                            match client.top_k("demo", 0, 0, 0, 5, fixed.clone()).unwrap() {
                                Response::TopK(pairs) => {
                                    topk_pairs_bits_eq(
                                        &pairs,
                                        &oracle_topk(model, 0, 5, &fixed),
                                        "storm merged top-k",
                                    );
                                    None
                                }
                                other => Some(other),
                            }
                        }
                        _ => {
                            let fixed = vec![((c * 13 + i) % 40) as u32, (i % 9) as u32];
                            match client.top_k("demo", 0, 0, 2, 4, fixed.clone()).unwrap() {
                                Response::TopK(pairs) => {
                                    topk_pairs_bits_eq(
                                        &pairs,
                                        &oracle_topk(model, 2, 4, &fixed),
                                        "storm owner top-k",
                                    );
                                    None
                                }
                                other => Some(other),
                            }
                        }
                    };
                    // Anything that was not a bit-identical answer must
                    // be one of the two typed storm outcomes.
                    match resp {
                        None => {}
                        Some(Response::Error(WireError::Degraded, _)) => {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(Response::Error(WireError::Overloaded, _)) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(other) => panic!("untyped storm outcome: {other:?}"),
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }

        // The kill driver: fire the scheduled shard kill exactly when
        // the storm crosses its progress fraction.
        while completed.load(Ordering::Relaxed) < total {
            let progress = completed.load(Ordering::Relaxed) as f64 / total as f64;
            for rank in plan.kills_due(progress) {
                cluster.kill_worker(rank);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for t in clients {
            t.join().unwrap();
        }
    });

    assert!(!cluster.worker_alive(killed_rank), "kill fired");
    assert_eq!(completed.load(Ordering::Relaxed), total);
    // One replica of three-sharded data died with a live sibling: the
    // storm should have failed over, not degraded.
    assert_eq!(
        degraded.load(Ordering::Relaxed),
        0,
        "no range was uncovered"
    );

    // The router noticed: the killed worker's shard recorded failovers
    // once its first replica stopped answering.
    let report = router.profile_report();
    let shards = report.serve.expect("serve row").shards;
    assert_eq!(shards.len(), 3);
    let shard1 = &shards[1];
    assert!(
        shard1.failovers > 0,
        "shard 1 lost a replica mid-storm but recorded no failovers: {shards:?}"
    );
    cluster.shutdown();
}

#[test]
fn dead_hash_range_degrades_typed_and_live_shards_keep_answering() {
    let model = smoke_model();
    let shared = SharedModel::from_model("demo", model.clone());
    let config = smoke_config();
    let seed = config.seed;
    let mut cluster = LoopbackCluster::start(config, &shared, None).expect("cluster starts");
    let router = cluster.router();

    // Kill *both* replicas of shard 0: its hash range is now uncovered.
    cluster.kill_worker(0);
    cluster.kill_worker(1);
    // The health pinger marks them Dead after consecutive probe failures.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        use splatt::serve::cluster::HealthState;
        let dead = router.health().state(0) == HealthState::Dead
            && router.health().state(1) == HealthState::Dead;
        if dead {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "health board never marked the killed replicas Dead"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let ring = ShardRing::new(3, seed);
    let owned_by_dead = (0..40u32).find(|&i| ring.shard_of(i) == 0).unwrap();
    let owned_by_live = (0..40u32).find(|&i| ring.shard_of(i) != 0).unwrap();
    let mut client = Client::connect(cluster.router_addr()).expect("connect to router");

    // A query into the dead range: typed Degraded, immediately — the
    // router does not burn the whole deadline on an uncoverable range.
    match client
        .entries("demo", 0, 0, 3, vec![owned_by_dead, 0, 0])
        .unwrap()
    {
        Response::Error(WireError::Degraded, msg) => {
            assert!(msg.contains("no live replica"), "{msg}");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }

    // A query into a covered range still answers bit-identically.
    match client
        .entries("demo", 0, 0, 3, vec![owned_by_live, 1, 1])
        .unwrap()
    {
        Response::Entries(vals) => {
            let want = oracle_entry(&model, &[owned_by_live, 1, 1]);
            assert_bits_eq(&vals, &[want], "live-shard entry");
        }
        other => panic!("expected entries, got {other:?}"),
    }

    // Scatter ops need every shard, so they degrade typed too.
    match client.top_k("demo", 0, 0, 0, 5, vec![0, 0]).unwrap() {
        Response::Error(WireError::Degraded, _) => {}
        other => panic!("expected Degraded top-k, got {other:?}"),
    }

    // And the stats row accounts for the degraded answers.
    let shards = router.profile_report().serve.expect("serve row").shards;
    assert!(
        shards[0].degraded >= 2,
        "degraded answers must be counted: {shards:?}"
    );
    assert!(
        shards[0].health_transitions >= 2,
        "Live->Suspect->Dead transitions must be counted: {shards:?}"
    );
    cluster.shutdown();
}

#[test]
fn fault_schedule_is_reproducible_in_its_seed() {
    // The exact property the storm relies on: a NetFaultPlan seed fully
    // determines which (query, worker) sites delay, corrupt, and when
    // each kill fires — so a failing storm replays identically.
    let build = || {
        NetFaultPlan::new(FaultPlan::new(
            STORM_SEED,
            FaultRates {
                straggler: 0.05,
                corrupt: 0.05,
                ..Default::default()
            },
        ))
        .with_kill(2, 0.5)
    };
    let a = build();
    let b = build();
    let mut injected = 0usize;
    for query in 0..(CLIENTS * QUERIES_PER_CLIENT) {
        for worker in 0..6 {
            assert_eq!(
                a.delay_before_send(query, worker),
                b.delay_before_send(query, worker),
                "delay schedule diverged at ({query}, {worker})"
            );
            let mut pa = vec![0u8, 1];
            let mut pb = vec![0u8, 1];
            let ca = a.corrupt_frame(query, worker, &mut pa);
            assert_eq!(
                ca,
                b.corrupt_frame(query, worker, &mut pb),
                "corruption schedule diverged at ({query}, {worker})"
            );
            assert_eq!(pa, pb);
            injected += usize::from(ca);
        }
    }
    assert!(injected > 0, "the storm plan injected nothing");
    assert_eq!(a.kills_due(0.49), Vec::<usize>::new());
    assert_eq!(a.kills_due(0.5), vec![2]);
    assert_eq!(b.kills_due(0.5), vec![2]);
}
