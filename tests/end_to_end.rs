//! Cross-crate integration tests: the full pipeline from synthetic data
//! through sorting, CSF construction, MTTKRP, and CP-ALS.

use splatt::core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt::core::reference::mttkrp_coo;
use splatt::par::TaskTeam;
use splatt::tensor::{io, synth, SortVariant};
use splatt::{
    cp_als, CpalsOptions, CsfAlloc, CsfSet, Implementation, LockStrategy, Matrix, MatrixAccess,
};

#[test]
fn full_pipeline_recovers_planted_structure() {
    let (tensor, truth) = synth::planted_dense(&[20, 18, 16], 3, 0.0, 1234);
    let opts = CpalsOptions {
        rank: 3,
        max_iters: 80,
        tolerance: 1e-10,
        ntasks: 3,
        ..Default::default()
    };
    let out = cp_als(&tensor, &opts);
    assert!(out.fit > 0.98, "fit {}", out.fit);

    // modeled values must match the tensor entries closely
    let mut worst: f64 = 0.0;
    for x in 0..tensor.nnz() {
        let coord = tensor.coord(x);
        let err = (out.model.value_at(&coord) - tensor.vals()[x]).abs();
        worst = worst.max(err / tensor.vals()[x].abs().max(1.0));
    }
    assert!(worst < 0.15, "worst relative entry error {worst}");
    let _ = truth;
}

#[test]
fn implementations_agree_numerically_end_to_end() {
    let tensor = synth::power_law(&[40, 25, 55], 6_000, 1.8, 99);
    let base = CpalsOptions {
        rank: 6,
        max_iters: 8,
        tolerance: 0.0,
        ntasks: 4,
        ..Default::default()
    };
    let reference = cp_als(
        &tensor,
        &base.clone().with_implementation(Implementation::Reference),
    );
    for imp in [
        Implementation::PortedInitial,
        Implementation::PortedOptimized,
    ] {
        let other = cp_als(&tensor, &base.clone().with_implementation(imp));
        assert!(
            (reference.fit - other.fit).abs() < 1e-8,
            "{imp:?}: fit {} vs reference {}",
            other.fit,
            reference.fit
        );
        assert_eq!(other.iterations, reference.iterations);
    }
}

#[test]
fn mttkrp_grid_consistency_across_all_knobs() {
    // one tensor, every (access x lock x alloc x ntasks) combination must
    // produce the same MTTKRP result as the COO reference
    let tensor = synth::power_law(&[30, 12, 45], 3_000, 1.6, 55);
    let rank = 5;
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, rank, 500 + m as u64))
        .collect();
    let expected: Vec<Matrix> = (0..3).map(|m| mttkrp_coo(&tensor, &factors, m)).collect();

    for ntasks in [1, 3] {
        let team = TaskTeam::new(ntasks);
        for alloc in [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All] {
            let set = CsfSet::build(&tensor, alloc, &team, SortVariant::AllOpts);
            for access in [
                MatrixAccess::RowCopy,
                MatrixAccess::Index2D,
                MatrixAccess::PointerChecked,
                MatrixAccess::PointerZip,
            ] {
                for locks in LockStrategy::ALL {
                    // force the lock path so the strategies are exercised
                    let cfg = MttkrpConfig {
                        access,
                        locks,
                        priv_threshold: 0.0,
                        ..Default::default()
                    };
                    let mut ws = MttkrpWorkspace::new(&cfg, ntasks);
                    for (mode, expect) in expected.iter().enumerate() {
                        let mut out = Matrix::zeros(tensor.dims()[mode], rank);
                        mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, &cfg);
                        assert!(
                            out.approx_eq(expect, 1e-9),
                            "mismatch: mode {mode} alloc {alloc:?} access {access:?} \
                             locks {locks:?} ntasks {ntasks}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn tns_file_to_decomposition() {
    // write a planted tensor to disk, read it back, decompose the copy
    let (tensor, _) = synth::planted_dense(&[12, 10, 8], 2, 0.0, 32);
    let dir = std::env::temp_dir().join("splatt_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("planted.tns");
    io::write_tns_file(&tensor, &path).unwrap();
    let loaded = io::read_tns_file(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let opts = CpalsOptions {
        rank: 2,
        max_iters: 50,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let out = cp_als(&loaded, &opts);
    assert!(out.fit > 0.97, "fit {}", out.fit);
}

#[test]
fn sort_variant_does_not_change_decomposition() {
    let tensor = synth::power_law(&[25, 15, 35], 2_500, 2.0, 77);
    let base = CpalsOptions {
        rank: 4,
        max_iters: 6,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let fits: Vec<f64> = SortVariant::ALL
        .iter()
        .map(|&sv| {
            cp_als(
                &tensor,
                &CpalsOptions {
                    sort_variant: sv,
                    ..base.clone()
                },
            )
            .fit
        })
        .collect();
    for w in fits.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-10, "{fits:?}");
    }
}

#[test]
fn csf_alloc_does_not_change_decomposition() {
    let tensor = synth::power_law(&[25, 15, 35], 2_500, 2.0, 78);
    let base = CpalsOptions {
        rank: 4,
        max_iters: 6,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let fits: Vec<f64> = [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All]
        .iter()
        .map(|&a| {
            cp_als(
                &tensor,
                &CpalsOptions {
                    csf_alloc: a,
                    ..base.clone()
                },
            )
            .fit
        })
        .collect();
    for w in fits.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-6, "{fits:?}");
    }
}

#[test]
fn paper_protocol_runs_exactly_twenty_iterations() {
    let tensor = synth::random_uniform(&[30, 20, 25], 2_000, 5);
    let out = cp_als(&tensor, &CpalsOptions::paper_protocol(2));
    assert_eq!(out.iterations, 20);
    assert_eq!(out.fits.len(), 20);
    assert_eq!(out.model.rank(), 35);
}

#[test]
fn dataset_shapes_decompose_at_small_scale() {
    for shape in &synth::ALL_SHAPES {
        let tensor = shape.generate(1.0 / 2000.0, 8);
        let opts = CpalsOptions {
            rank: 4,
            max_iters: 3,
            tolerance: 0.0,
            ntasks: 2,
            ..Default::default()
        };
        let out = cp_als(&tensor, &opts);
        assert!(out.fit.is_finite(), "{}: fit not finite", shape.name);
        assert!(
            out.model.lambda.iter().all(|l| l.is_finite()),
            "{}: lambda not finite",
            shape.name
        );
    }
}
