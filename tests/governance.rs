//! Cross-crate run-governance tests: the guarantees the RunGuard stack
//! must uphold.
//!
//! * Every injected stall is caught by the watchdog within its bound.
//! * A tripping watchdog aborts the run with a `Stalled` reason.
//! * Deadline and memory-budget aborts leave a durable checkpoint, and
//!   resuming from it reproduces the ungoverned run bit for bit.
//! * The profile report (schema v3) records guard activity.
//! * A clean guarded MTTKRP costs < 2% over the unguarded kernel
//!   (release-mode smoke, `--ignored`).
//!
//! The allocation counters and the wall clock are process-global, so
//! every test serializes on one mutex — the timing bounds and budget
//! calibrations assume no sibling test is burning the same resources.

use splatt::guard::{GuardConfig, RunGuard, StallReport, TripReason, WatchdogConfig};
use splatt::tensor::synth;
use splatt::{
    try_cp_als, try_cp_als_guarded, Checkpoint, CpalsError, CpalsOptions, CpalsOutput, FaultKind,
    FaultPlan, FaultRates, Matrix, MatrixAccess, RunAborted,
};
use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn planted() -> splatt::SparseTensor {
    synth::planted_dense(&[18, 15, 12], 3, 0.0, 7).0
}

fn base_opts() -> CpalsOptions {
    CpalsOptions {
        rank: 3,
        max_iters: 10,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    }
}

/// A plan whose only faults are stragglers: pure injected latency, never
/// a numerical change — so governed runs stay bit-comparable to clean
/// ones.
fn straggler_plan(seed: u64, scale: u64) -> FaultPlan {
    FaultPlan::new(
        seed,
        FaultRates {
            straggler: 1.0,
            ..Default::default()
        },
    )
    .with_straggler_scale(scale)
}

fn matrix_bits(m: &Matrix) -> Vec<u64> {
    (0..m.rows())
        .flat_map(|i| m.row(i).iter().map(|v| v.to_bits()))
        .collect()
}

fn assert_bit_identical(a: &CpalsOutput, b: &CpalsOutput, what: &str) {
    assert_eq!(a.fit.to_bits(), b.fit.to_bits(), "{what}: fit bits");
    assert_eq!(
        a.fits.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        b.fits.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
        "{what}: fit history bits"
    );
    for (m, (fa, fb)) in a.model.factors.iter().zip(&b.model.factors).enumerate() {
        assert_eq!(matrix_bits(fa), matrix_bits(fb), "{what}: factor {m} bits");
    }
}

fn expect_aborted(r: Result<CpalsOutput, CpalsError>, what: &str) -> Box<RunAborted> {
    match r {
        Err(CpalsError::Aborted(ab)) => ab,
        Err(other) => panic!("{what}: expected Aborted, got {other}"),
        Ok(out) => panic!(
            "{what}: run finished ({} iterations) instead of aborting",
            out.iterations
        ),
    }
}

/// Every straggler sleep exceeds the stall bound, so the watchdog must
/// file at least one report per injected stall — and a non-tripping
/// watchdog must never perturb the run.
#[test]
fn watchdog_reports_every_straggler_stall() {
    let _s = serial();
    let tensor = planted();
    let opts = CpalsOptions {
        max_iters: 4,
        ..base_opts()
    };
    // scale 200: sleeps of 20..200ms, all far above the 5ms bound
    let plan = straggler_plan(0xD06, 200);
    let bound = Duration::from_millis(5);
    let guard = RunGuard::new(GuardConfig {
        watchdog: Some(WatchdogConfig {
            stall_bound: bound,
            sample_interval: Duration::from_millis(1),
            trip_cancel: false,
        }),
        lanes: opts.ntasks,
        ..Default::default()
    });
    let clean = try_cp_als(&tensor, &opts, None).expect("clean run");
    let out = try_cp_als_guarded(&tensor, &opts, Some(&plan), Some(&guard))
        .expect("a non-tripping watchdog must not abort the run");
    guard.shutdown();

    let stalls = plan
        .events()
        .iter()
        .filter(|e| e.kind == FaultKind::Straggler)
        .count();
    assert_eq!(stalls, 4 * 3, "rate-1.0 plan stalls every mode");
    let reports: Vec<StallReport> = guard.stall_reports();
    assert!(
        reports.len() >= stalls,
        "{} watchdog reports for {} injected stalls",
        reports.len(),
        stalls
    );
    for r in &reports {
        assert!(
            r.stalled_for >= bound,
            "reported stall {:?} under the {:?} bound",
            r.stalled_for,
            bound
        );
        assert_eq!(r.lane, 0, "stragglers sleep on the driver lane");
    }
    let snap = guard.snapshot();
    assert!(snap.watchdog_samples > 0);
    assert_eq!(snap.trip, None, "observing watchdog must not trip");
    // injected latency is invisible to the arithmetic
    assert_bit_identical(&clean, &out, "watchdog-observed run");
}

/// With `trip_cancel` armed, a stall cancels the run and the abort is
/// attributed to the watchdog.
#[test]
fn tripping_watchdog_aborts_with_stalled_reason() {
    let _s = serial();
    let tensor = planted();
    let opts = CpalsOptions {
        max_iters: 40,
        ..base_opts()
    };
    let plan = straggler_plan(0x57A11, 400); // 40..400ms sleeps
    let bound = Duration::from_millis(10);
    let guard = RunGuard::new(GuardConfig {
        watchdog: Some(WatchdogConfig {
            stall_bound: bound,
            sample_interval: Duration::from_millis(2),
            trip_cancel: true,
        }),
        lanes: opts.ntasks,
        ..Default::default()
    });
    let ab = expect_aborted(
        try_cp_als_guarded(&tensor, &opts, Some(&plan), Some(&guard)),
        "tripping watchdog",
    );
    guard.shutdown();
    match ab.reason {
        TripReason::Stalled { lane, stalled_for } => {
            assert_eq!(lane, 0);
            assert!(stalled_for >= bound);
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    assert!(ab.iteration >= 1);
}

/// A deadline abort mid-run leaves a durable checkpoint; resuming from
/// it without governance reproduces the uninterrupted run bit for bit.
#[test]
fn deadline_abort_resumes_bit_for_bit() {
    let _s = serial();
    let tensor = planted();
    let dir = std::env::temp_dir().join("splatt_gov_deadline");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let base = CpalsOptions {
        max_iters: 40,
        ..base_opts()
    };
    let straight = try_cp_als(&tensor, &base, None).unwrap();

    // every iteration sleeps >= 30ms, so 40 iterations need >= 1.2s and
    // the 800ms deadline must trip mid-run; the first iteration sleeps
    // at most ~300ms, so at least one checkpoint lands inside the budget
    let plan = straggler_plan(0xDEAD, 100);
    let limit = Duration::from_millis(800);
    let guard = RunGuard::new(GuardConfig {
        deadline: Some(limit),
        lanes: base.ntasks,
        ..Default::default()
    });
    let ab = expect_aborted(
        try_cp_als_guarded(
            &tensor,
            &CpalsOptions {
                checkpoint_dir: Some(dir.clone()),
                ..base.clone()
            },
            Some(&plan),
            Some(&guard),
        ),
        "deadline",
    );
    match ab.reason {
        TripReason::DeadlineExceeded { elapsed, limit: l } => {
            assert_eq!(l, limit);
            assert!(elapsed >= limit, "tripped early: {elapsed:?} < {limit:?}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(ab.iteration >= 1 && ab.iteration < 40);
    assert_eq!(ab.partial.factors.len(), 3, "partial model is present");

    let latest = ab
        .last_checkpoint
        .expect("at least one iteration fit inside the deadline");
    assert_eq!(Some(latest.clone()), Checkpoint::latest_in(&dir).unwrap());
    let resumed = try_cp_als(
        &tensor,
        &CpalsOptions {
            resume_from: Some(latest),
            ..base
        },
        None,
    )
    .unwrap();
    assert_bit_identical(&straight, &resumed, "deadline-abort resume");
    std::fs::remove_dir_all(&dir).ok();
}

/// A memory-budget abort is also checkpoint-resumable. The budget is
/// calibrated from the run's own measured allocation traffic so the
/// trip lands deterministically around iteration three. The run uses
/// the Chapel-initial `RowCopy` access on purpose: it is the
/// allocation-heavy configuration the budget governor exists for — the
/// optimized access paths allocate nothing per iteration in steady
/// state, so there is no per-iteration traffic to calibrate against.
#[test]
fn memory_budget_abort_resumes_bit_for_bit() {
    let _s = serial();
    let tensor = planted();
    let dir = std::env::temp_dir().join("splatt_gov_membudget");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let base = CpalsOptions {
        access: MatrixAccess::RowCopy,
        ..base_opts()
    };
    let straight = try_cp_als(&tensor, &base, None).unwrap();

    // calibrate: traffic of (build + 1 iteration) and per-iteration delta
    splatt::probe::alloc::enable();
    let before1 = splatt::probe::alloc::snapshot();
    try_cp_als(
        &tensor,
        &CpalsOptions {
            max_iters: 1,
            ..base.clone()
        },
        None,
    )
    .unwrap();
    let one = splatt::probe::alloc::snapshot().since(&before1);
    let before3 = splatt::probe::alloc::snapshot();
    try_cp_als(
        &tensor,
        &CpalsOptions {
            max_iters: 3,
            ..base.clone()
        },
        None,
    )
    .unwrap();
    let three = splatt::probe::alloc::snapshot().since(&before3);
    let per_iter = (three.total_bytes() - one.total_bytes()) / 2;
    assert!(per_iter > 0, "kernels produced no allocation traffic");

    // enough for build + ~2.5 iterations: trips during iteration 3,
    // after checkpoints exist
    let budget = one.total_bytes() + per_iter * 3 / 2;
    let guard = RunGuard::new(GuardConfig {
        mem_budget: Some(budget),
        lanes: base.ntasks,
        ..Default::default()
    });
    let ab = expect_aborted(
        try_cp_als_guarded(
            &tensor,
            &CpalsOptions {
                checkpoint_dir: Some(dir.clone()),
                ..base.clone()
            },
            None,
            Some(&guard),
        ),
        "memory budget",
    );
    match ab.reason {
        TripReason::MemoryExceeded {
            used_bytes,
            limit_bytes,
        } => {
            assert_eq!(limit_bytes, budget);
            assert!(used_bytes > limit_bytes);
        }
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
    assert!(
        ab.iteration >= 2 && ab.iteration <= 4,
        "calibrated budget should trip around iteration 3, tripped at {}",
        ab.iteration
    );

    let latest = ab.last_checkpoint.expect("iterations completed pre-trip");
    let resumed = try_cp_als(
        &tensor,
        &CpalsOptions {
            resume_from: Some(latest),
            ..base
        },
        None,
    )
    .unwrap();
    assert_bit_identical(&straight, &resumed, "budget-abort resume");
    std::fs::remove_dir_all(&dir).ok();
}

/// Schema v3: a guarded profiled run records guard activity; an
/// unguarded one serializes `"guard": null`.
#[test]
fn profile_records_guard_activity() {
    let _s = serial();
    let tensor = planted();
    let opts = CpalsOptions {
        max_iters: 3,
        profile: true,
        ..base_opts()
    };
    let guard = RunGuard::unarmed();
    let out = try_cp_als_guarded(&tensor, &opts, None, Some(&guard)).unwrap();
    let p = out.profile.expect("profiling was enabled");
    let g = p.guard.as_ref().expect("guarded run records a guard row");
    assert!(g.checks > 0, "driver checks were counted");
    assert_eq!(g.trips, 0);
    assert_eq!(g.trip, "");
    let json = p.to_json();
    assert!(json.contains(splatt::probe::PROFILE_SCHEMA));
    assert!(json.contains("\"guard\""), "guard object missing: {json}");
    assert!(json.contains("\"checks\""));

    let out2 = try_cp_als(&tensor, &opts, None).unwrap();
    let p2 = out2.profile.expect("profiling was enabled");
    assert!(p2.guard.is_none());
    assert!(p2.to_json().contains("\"guard\": null"));
}

/// An already-cancelled guard aborts before the first iteration, with
/// the partial model echoing the (resumed or random) initial factors.
#[test]
fn pre_cancelled_guard_aborts_immediately() {
    let _s = serial();
    let tensor = planted();
    let guard = RunGuard::unarmed();
    guard.cancel();
    let ab = expect_aborted(
        try_cp_als_guarded(&tensor, &base_opts(), None, Some(&guard)),
        "pre-cancelled",
    );
    assert_eq!(ab.reason, TripReason::Cancelled);
    assert_eq!(ab.iteration, 1, "tripped at the first iteration check");
    assert!(ab.last_checkpoint.is_none());
}

/// Release-mode smoke for the ISSUE's overhead bound: a clean guarded
/// MTTKRP must cost < 2% over the unguarded kernel (best-of-5 on the
/// paper's critical routine). Run via the CI governance job:
/// `cargo test --release --test governance -- --ignored`.
#[test]
#[ignore = "perf smoke: run in release mode via the CI governance job"]
fn clean_guard_overhead_is_under_two_percent() {
    let _s = serial();
    // a workload big enough that a 2% MTTKRP delta is far above timer
    // noise (total MTTKRP time per run is well over 100ms)
    let tensor = synth::power_law(&[150, 120, 100], 400_000, 1.5, 3);
    let opts = CpalsOptions {
        rank: 16,
        max_iters: 30,
        tolerance: 0.0,
        ntasks: 2,
        ..Default::default()
    };
    let run = |guarded: bool| -> f64 {
        let out = if guarded {
            try_cp_als_guarded(&tensor, &opts, None, Some(&RunGuard::unarmed())).unwrap()
        } else {
            try_cp_als(&tensor, &opts, None).unwrap()
        };
        out.timers.seconds(splatt::par::Routine::Mttkrp)
    };
    // paired rounds: each round runs clean and guarded back to back and
    // records the ratio, so both arms see the same machine state. The
    // best round is the one least polluted by scheduler noise — a true
    // overhead above 2% would push every round's ratio over the bar.
    run(false); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let (clean, guarded) = (run(false), run(true));
        best = best.min(guarded / clean);
        if best <= 1.02 {
            break;
        }
    }
    assert!(
        best <= 1.02,
        "guard overhead {:.2}% exceeds 2% in every paired round",
        (best - 1.0) * 100.0
    );
}
