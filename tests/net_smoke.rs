//! Front-end smoke tests for the `splatt-net` reactor: a 10k-connection
//! mostly-idle run served by a bounded worker pool, a saturation run
//! showing typed shedding with bounded admitted-request latency, and a
//! bit-identical A/B sweep against the legacy thread-per-connection
//! oracle. The first two write `target/net-smoke-report.json` /
//! `target/net-saturation-report.json` for CI artifact upload.

use splatt::serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Request, RequestBody, Response,
    WireError,
};
use splatt::serve::{serve_with, FrontEndConfig, ServeConfig, ServeEngine, ServerHandle};
use splatt::{KruskalModel, Matrix};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The big tests share the process fd budget; run them one at a time.
fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic xorshift64* — seeded, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A small deterministic model (3 modes, rank 3).
fn test_model(seed: u64) -> KruskalModel {
    KruskalModel {
        lambda: vec![1.5, -0.75, 0.25],
        factors: vec![
            Matrix::random(7, 3, seed),
            Matrix::random(5, 3, seed ^ 0xA5),
            Matrix::random(6, 3, seed ^ 0x5A),
        ],
    }
}

fn start_server(front: FrontEndConfig, config: ServeConfig) -> (ServerHandle, KruskalModel) {
    let engine = ServeEngine::start(config);
    let model = test_model(0xBEEF);
    engine.publish("m", model.clone());
    let handle = serve_with(engine, "127.0.0.1:0", front).expect("bind");
    (handle, model)
}

fn entry_request(rng: &mut Rng, model: &KruskalModel, deadline_ms: u32) -> (Request, Vec<f64>) {
    let coords: Vec<u32> = model
        .factors
        .iter()
        .map(|f| rng.below(f.rows() as u64) as u32)
        .collect();
    let want = vec![model.value_at(&coords)];
    (
        Request {
            deadline_ms,
            model: "m".into(),
            version: 0,
            body: RequestBody::Entry { order: 3, coords },
        },
        want,
    )
}

fn call_raw(stream: &mut TcpStream, req: &Request) -> std::io::Result<Response> {
    write_frame(stream, &encode_request(req).expect("encode"))?;
    decode_response(&read_frame(stream)?).map_err(std::io::Error::other)
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: value {i} ({g} vs {w})");
    }
}

#[test]
fn ten_thousand_mostly_idle_connections_on_a_bounded_pool() {
    let _guard = serial_guard();
    // Each loopback connection costs two fds in this process (client +
    // server end); leave headroom for everything else.
    let limit = splatt::net::sys::raise_nofile_limit(24_000)
        .or_else(|_| splatt::net::sys::nofile_limit().map(|(soft, _)| soft))
        .unwrap_or(1_024);
    let target = 10_000usize.min(((limit.saturating_sub(600)) / 2) as usize);
    assert!(
        target >= 1_000,
        "fd limit {limit} too low for a meaningful run"
    );

    let (handle, model) = start_server(
        FrontEndConfig {
            max_conns: target + 64,
            ..FrontEndConfig::default()
        },
        ServeConfig::default(),
    );
    let addr = handle.addr();
    let started = Instant::now();
    let mut rng = Rng(0x1D1E_5EED);
    let mut conns: Vec<TcpStream> = Vec::with_capacity(target);
    let mut queried = 0usize;
    for i in 0..target {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // A sparse minority of connections actually talk; the rest sit
        // idle and must cost no threads.
        if i % 97 == 0 {
            stream.set_nodelay(true).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .unwrap();
            let (req, want) = entry_request(&mut rng, &model, 10_000);
            match call_raw(&mut stream, &req).expect("query") {
                Response::Entries(vals) => assert_bits_eq(&vals, &want, "idle-smoke entry"),
                other => panic!("expected entries, got {other:?}"),
            }
            queried += 1;
        }
        conns.push(stream);
    }

    // Every connection registers with the reactor (accept is async to
    // the connect call).
    let deadline = Instant::now() + Duration::from_secs(30);
    let snapshot = loop {
        let snap = handle.net_counters().expect("reactor front end");
        if snap.connections_peak >= target as u64 || Instant::now() > deadline {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        snapshot.connections_peak >= target as u64,
        "only {} of {target} connections registered",
        snapshot.connections_peak
    );

    // The whole point: tens of thousands of connections, a handful of
    // threads. Allow reactor + workers within 2x cores (floor of 2
    // workers on tiny machines), and demand it is *far* below the
    // connection count.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let allowed = (2 * cores).max(4) as u64;
    assert!(
        snapshot.worker_threads <= allowed,
        "{} worker threads for {cores} cores",
        snapshot.worker_threads
    );
    assert!(
        (snapshot.worker_threads as usize) * 100 < target,
        "pool ({}) not bounded relative to connections ({target})",
        snapshot.worker_threads
    );
    assert_eq!(snapshot.sheds_accept, 0, "no shedding below the cap");
    assert!(queried > 0 && snapshot.frames_read >= queried as u64);

    let report = format!(
        "{{\"test\": \"mostly_idle_smoke\", \"target_connections\": {target}, \
         \"cores\": {cores}, \"elapsed_ms\": {}, \"queried\": {queried}, \
         \"accepted\": {}, \"connections_peak\": {}, \"worker_threads\": {}, \
         \"polls\": {}, \"readiness_wakeups\": {}, \"frames_read\": {}, \
         \"frames_written\": {}}}\n",
        started.elapsed().as_millis(),
        snapshot.accepted,
        snapshot.connections_peak,
        snapshot.worker_threads,
        snapshot.polls,
        snapshot.readiness_wakeups,
        snapshot.frames_read,
        snapshot.frames_written,
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/net-smoke-report.json", report).expect("write report");

    drop(conns);
    handle.shutdown();
}

#[test]
fn saturation_sheds_typed_overloaded_with_bounded_admitted_latency() {
    let _guard = serial_guard();
    const DEADLINE_MS: u32 = 2_000;
    const CLIENTS: usize = 8;
    const PIPELINE: usize = 16;
    const ROUNDS: usize = 6;

    let (handle, model) = start_server(
        FrontEndConfig {
            workers: 2,
            max_conns: 64,
            queue_depth: 2,
            max_pipeline: 32,
            ..FrontEndConfig::default()
        },
        ServeConfig {
            ntasks: 1,
            max_depth: 2,
            ..ServeConfig::default()
        },
    );
    let addr = handle.addr();
    let started = Instant::now();

    let ok_latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sheds = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ok_latencies = Arc::clone(&ok_latencies);
            let sheds = Arc::clone(&sheds);
            let model = model.clone();
            std::thread::spawn(move || {
                let mut rng = Rng(0x5A7_0000 + c as u64);
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for _ in 0..ROUNDS {
                    // Pipeline a burst, then read every answer back in
                    // order — this is what overwhelms the decode gate.
                    let mut wants = Vec::with_capacity(PIPELINE);
                    let sent = Instant::now();
                    for _ in 0..PIPELINE {
                        let (req, want) = entry_request(&mut rng, &model, DEADLINE_MS);
                        write_frame(&mut stream, &encode_request(&req).unwrap()).expect("send");
                        wants.push(want);
                    }
                    for want in &wants {
                        let frame = read_frame(&mut stream).expect("recv");
                        match decode_response(&frame).expect("decode") {
                            Response::Entries(vals) => {
                                assert_bits_eq(&vals, want, "saturated entry");
                                ok_latencies
                                    .lock()
                                    .unwrap()
                                    .push(sent.elapsed().as_micros() as u64);
                            }
                            Response::Error(
                                WireError::Overloaded | WireError::DeadlineExpired,
                                _,
                            ) => {
                                sheds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            other => panic!("untyped saturation outcome: {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let snapshot = handle.net_counters().expect("reactor front end");
    let mut lat = ok_latencies.lock().unwrap().clone();
    lat.sort_unstable();
    assert!(!lat.is_empty(), "saturation run admitted nothing");
    let p99 = lat[((lat.len() * 99) / 100).min(lat.len() - 1)];
    let shed_total = sheds.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        shed_total > 0 || snapshot.sheds_decode > 0,
        "saturation produced no typed sheds (decode counter {})",
        snapshot.sheds_decode
    );
    assert!(
        p99 <= u64::from(DEADLINE_MS) * 1_000,
        "p99 {}us exceeds the {DEADLINE_MS}ms deadline",
        p99
    );

    let report = format!(
        "{{\"test\": \"saturation\", \"clients\": {CLIENTS}, \"pipeline\": {PIPELINE}, \
         \"rounds\": {ROUNDS}, \"deadline_ms\": {DEADLINE_MS}, \"elapsed_ms\": {}, \
         \"admitted\": {}, \"typed_sheds\": {shed_total}, \"p99_micros\": {p99}, \
         \"sheds_decode\": {}, \"sheds_accept\": {}, \"frames_read\": {}, \
         \"coalesced_writes\": {}, \"writes\": {}}}\n",
        started.elapsed().as_millis(),
        lat.len(),
        snapshot.sheds_decode,
        snapshot.sheds_accept,
        snapshot.frames_read,
        snapshot.coalesced_writes,
        snapshot.writes,
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/net-saturation-report.json", report).expect("write report");

    handle.shutdown();
}

#[test]
fn reactor_and_legacy_front_ends_answer_bit_identically() {
    let _guard = serial_guard();
    let (reactor, model) = start_server(FrontEndConfig::default(), ServeConfig::default());
    let (legacy, _) = start_server(
        FrontEndConfig {
            legacy_threads: true,
            ..FrontEndConfig::default()
        },
        ServeConfig::default(),
    );
    assert!(reactor.net_counters().is_some());
    assert!(legacy.net_counters().is_none(), "legacy has no reactor");

    let mut a = splatt::serve::Client::connect(reactor.addr()).expect("connect reactor");
    let mut b = splatt::serve::Client::connect(legacy.addr()).expect("connect legacy");
    a.set_io_timeout(Some(Duration::from_secs(20))).unwrap();
    b.set_io_timeout(Some(Duration::from_secs(20))).unwrap();

    let mut rng = Rng(0xAB0_CAFE);
    for i in 0..160 {
        let req = match rng.below(6) {
            0 => entry_request(&mut rng, &model, 5_000).0,
            1 => Request {
                deadline_ms: 5_000,
                model: "m".into(),
                version: 0,
                body: RequestBody::Slice {
                    mode: rng.below(3) as u8,
                    index: rng.below(5) as u32,
                },
            },
            2 => Request {
                deadline_ms: 5_000,
                model: "m".into(),
                version: 0,
                body: RequestBody::TopK {
                    mode: 0,
                    k: 1 + rng.below(7) as u32,
                    fixed: vec![rng.below(5) as u32, rng.below(6) as u32],
                },
            },
            3 => Request {
                deadline_ms: 0,
                model: String::new(),
                version: 0,
                body: RequestBody::List,
            },
            4 => Request {
                deadline_ms: 0,
                model: String::new(),
                version: 0,
                body: RequestBody::Health,
            },
            // Typed errors must match bit-for-bit too.
            _ => Request {
                deadline_ms: 5_000,
                model: "missing".into(),
                version: 3,
                body: RequestBody::Slice { mode: 0, index: 0 },
            },
        };
        let fa = a.call_frame(&req).expect("reactor call");
        let fb = b.call_frame(&req).expect("legacy call");
        assert_eq!(fa, fb, "response {i} differs between front ends: {req:?}");
    }

    reactor.shutdown();
    legacy.shutdown();
}
