//! Property-based tests over the core data structures and kernels.

use proptest::prelude::*;
use splatt::core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt::core::reference::mttkrp_coo;
use splatt::dense::{cholesky_factor, cholesky_solve, gemm, jacobi_eigen, mat_ata};
use splatt::par::TaskTeam;
use splatt::tensor::{sort, SortVariant};
use splatt::{Csf, CsfAlloc, CsfSet, Matrix, SparseTensor};

/// Strategy: a random small 3rd-order tensor (dims 2..=12, nnz 0..=200,
/// duplicate coordinates allowed).
fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    (2usize..=12, 2usize..=12, 2usize..=12)
        .prop_flat_map(|(d0, d1, d2)| {
            let entry = (0..d0 as u32, 0..d1 as u32, 0..d2 as u32, -5.0f64..5.0);
            (Just([d0, d1, d2]), proptest::collection::vec(entry, 0..200))
        })
        .prop_map(|(dims, entries)| {
            let mut t = SparseTensor::new(dims.to_vec());
            for (i, j, k, v) in entries {
                t.push(&[i, j, k], v);
            }
            t
        })
}

/// Strategy: a mode permutation of a 3rd-order tensor.
fn arb_perm() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![0, 1, 2]),
        Just(vec![0, 2, 1]),
        Just(vec![1, 0, 2]),
        Just(vec![1, 2, 0]),
        Just(vec![2, 0, 1]),
        Just(vec![2, 1, 0]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sort_is_a_permutation_and_ordered(t in arb_tensor(), perm in arb_perm(),
                                         variant_idx in 0usize..4, ntasks in 1usize..4) {
        let variant = SortVariant::ALL[variant_idx];
        let team = TaskTeam::new(ntasks);
        let before = t.canonical_entries();
        let mut sorted = t.clone();
        sort::sort_by_perm(&mut sorted, &perm, &team, variant);
        prop_assert!(sorted.is_sorted_by(&perm));
        prop_assert_eq!(sorted.canonical_entries(), before);
    }

    #[test]
    fn csf_roundtrips_coo(t in arb_tensor(), perm in arb_perm()) {
        let team = TaskTeam::new(2);
        let csf = Csf::build(&t, &perm, &team, SortVariant::AllOpts);
        prop_assert_eq!(csf.nnz(), t.nnz());
        if t.nnz() > 0 {
            prop_assert_eq!(csf.to_coo().canonical_entries(), t.canonical_entries());
            prop_assert_eq!(csf.slice_nnz().iter().sum::<usize>(), t.nnz());
        }
    }

    #[test]
    fn mttkrp_matches_reference(t in arb_tensor(), mode in 0usize..3,
                                rank in 1usize..6, priv_force in proptest::bool::ANY) {
        let team = TaskTeam::new(2);
        let set = CsfSet::build(&t, CsfAlloc::Two, &team, SortVariant::AllOpts);
        let factors: Vec<Matrix> = t.dims().iter().enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, 77 + m as u64))
            .collect();
        let cfg = MttkrpConfig {
            priv_threshold: if priv_force { 1e12 } else { 0.0 },
            ..Default::default()
        };
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        let mut out = Matrix::zeros(t.dims()[mode], rank);
        mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, &cfg);
        let expect = mttkrp_coo(&t, &factors, mode);
        prop_assert!(out.approx_eq(&expect, 1e-8),
                     "max diff {}", out.max_abs_diff(&expect));
    }

    #[test]
    fn gramians_are_psd(rows in 1usize..30, cols in 1usize..8, seed in 0u64..1000) {
        let a = Matrix::random(rows, cols, seed);
        let g = mat_ata(&a);
        // symmetric
        prop_assert!(g.approx_eq(&g.transpose(), 1e-12));
        // eigenvalues nonnegative
        let e = jacobi_eigen(&g);
        for &w in &e.values {
            prop_assert!(w > -1e-9, "negative eigenvalue {w}");
        }
    }

    #[test]
    fn cholesky_solve_is_inverse_application(n in 1usize..8, seed in 0u64..1000) {
        let a = Matrix::random(n + 3, n, seed);
        let mut v = mat_ata(&a);
        for i in 0..n {
            v[(i, i)] += 1.0; // guarantee SPD
        }
        let x_true = Matrix::random(4, n, seed + 1);
        let mut b = gemm(&x_true, &v);
        let l = cholesky_factor(&v).unwrap();
        cholesky_solve(&l, &mut b);
        prop_assert!(b.approx_eq(&x_true, 1e-6),
                     "max diff {}", b.max_abs_diff(&x_true));
    }

    #[test]
    fn eigen_reconstructs(n in 1usize..8, seed in 0u64..1000) {
        let g = mat_ata(&Matrix::random(n + 2, n, seed));
        let e = jacobi_eigen(&g);
        prop_assert!(e.reconstruct().approx_eq(&g, 1e-8));
    }

    #[test]
    fn coalesce_preserves_coordinate_sums(t in arb_tensor()) {
        // total mass at each coordinate is invariant under coalescing
        use std::collections::HashMap;
        let mut sums: HashMap<Vec<u32>, f64> = HashMap::new();
        for x in 0..t.nnz() {
            *sums.entry(t.coord(x)).or_insert(0.0) += t.vals()[x];
        }
        let mut c = t.clone();
        c.coalesce();
        // every surviving entry matches the summed mass, and no duplicates
        let entries = c.canonical_entries();
        for w in entries.windows(2) {
            prop_assert_ne!(&w[0].0, &w[1].0);
        }
        for (coord, v) in &entries {
            let expect = sums.get(coord).copied().unwrap_or(0.0);
            prop_assert!((v - expect).abs() < 1e-12);
        }
        // entries that cancelled exactly are dropped, everything else kept
        let nonzero_sums = sums.values().filter(|v| **v != 0.0).count();
        prop_assert_eq!(entries.len(), nonzero_sums);
    }

    #[test]
    fn tiled_mttkrp_matches_reference(t in arb_tensor(), mode in 0usize..3,
                                      ntiles in 1usize..5, rank in 1usize..5) {
        prop_assume!(t.nnz() > 0);
        let team = TaskTeam::new(2);
        let tiled = splatt::core::TiledCsf::build(&t, mode, ntiles, &team, SortVariant::AllOpts);
        let factors: Vec<Matrix> = t.dims().iter().enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, 31 + m as u64))
            .collect();
        let cfg = MttkrpConfig::default();
        let mut out = Matrix::zeros(t.dims()[mode], rank);
        splatt::core::mttkrp::mttkrp_tiled(&tiled, &factors, &mut out, &team, &cfg);
        let expect = mttkrp_coo(&t, &factors, mode);
        prop_assert!(out.approx_eq(&expect, 1e-8),
                     "max diff {}", out.max_abs_diff(&expect));
    }

    #[test]
    fn permute_modes_preserves_values(t in arb_tensor()) {
        let p = t.permute_modes(&[2, 0, 1]);
        prop_assert_eq!(p.nnz(), t.nnz());
        let mut vals_a: Vec<f64> = t.vals().to_vec();
        let mut vals_b: Vec<f64> = p.vals().to_vec();
        vals_a.sort_by(f64::total_cmp);
        vals_b.sort_by(f64::total_cmp);
        prop_assert_eq!(vals_a, vals_b);
        // inverse permutation restores the original
        prop_assert_eq!(p.permute_modes(&[1, 2, 0]), t);
    }

    #[test]
    fn split_holdout_partitions(t in arb_tensor(), frac in 0.0f64..1.0, seed in 0u64..100) {
        let (train, test) = t.split_holdout(frac, seed);
        prop_assert_eq!(train.nnz() + test.nnz(), t.nnz());
        let mut all = train.canonical_entries();
        all.extend(test.canonical_entries());
        all.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        prop_assert_eq!(all, t.canonical_entries());
    }

    #[test]
    fn kruskal_model_roundtrips(rank in 1usize..5, seed in 0u64..100) {
        let model = splatt::KruskalModel {
            lambda: (0..rank).map(|r| (r + 1) as f64).collect(),
            factors: vec![
                Matrix::random(6, rank, seed),
                Matrix::random(4, rank, seed + 1),
                Matrix::random(5, rank, seed + 2),
            ],
        };
        let mut buf = Vec::new();
        model.write(&mut buf).unwrap();
        let back = splatt::KruskalModel::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back.lambda, model.lambda);
        for (a, b) in back.factors.iter().zip(&model.factors) {
            prop_assert!(a.approx_eq(b, 0.0));
        }
    }

    #[test]
    fn tns_roundtrip(t in arb_tensor()) {
        prop_assume!(t.nnz() > 0);
        let mut buf = Vec::new();
        splatt::tensor::io::write_tns(&t, &mut buf).unwrap();
        let back = splatt::tensor::io::read_tns(buf.as_slice()).unwrap();
        prop_assert_eq!(back.canonical_entries(), t.canonical_entries());
    }
}
