//! Property-based tests over the core data structures and kernels,
//! driven by the deterministic `splatt_rt::qc` harness (seeds are fixed;
//! failures name the case seed for replay via `SPLATT_QC_SEED`).

use splatt::core::mttkrp::{mttkrp, MttkrpConfig, MttkrpWorkspace};
use splatt::core::reference::mttkrp_coo;
use splatt::core::KernelKind;
use splatt::dense::{cholesky_factor, cholesky_solve, gemm, jacobi_eigen, mat_ata};
use splatt::par::TaskTeam;
use splatt::rt::qc::{self, Gen};
use splatt::tensor::{sort, SortVariant};
use splatt::{Csf, CsfAlloc, CsfSet, LockStrategy, Matrix, MatrixAccess, SparseTensor};

/// A random small 3rd-order tensor (dims 2..=12, nnz 0..200, duplicate
/// coordinates allowed).
fn gen_tensor(g: &mut Gen) -> SparseTensor {
    let dims = [g.usize_in(2..13), g.usize_in(2..13), g.usize_in(2..13)];
    let nnz = g.usize_in(0..200);
    let mut t = SparseTensor::new(dims.to_vec());
    for _ in 0..nnz {
        let coord = [
            g.usize_in(0..dims[0]) as u32,
            g.usize_in(0..dims[1]) as u32,
            g.usize_in(0..dims[2]) as u32,
        ];
        t.push(&coord, g.f64_in(-5.0, 5.0));
    }
    t
}

/// Random factor matrices matching `t`'s dims at `rank`, seeded off `base`.
fn gen_factors(t: &SparseTensor, rank: usize, base: u64) -> Vec<Matrix> {
    t.dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, rank, base + m as u64))
        .collect()
}

#[test]
fn sort_is_a_permutation_and_ordered() {
    qc::check("sort permutes and orders", 64, |g| {
        let t = gen_tensor(g);
        let perm = g.permutation(3);
        let variant = *g.choose(&SortVariant::ALL);
        let team = TaskTeam::new(g.usize_in(1..4));
        let before = t.canonical_entries();
        let mut sorted = t.clone();
        sort::sort_by_perm(&mut sorted, &perm, &team, variant);
        assert!(sorted.is_sorted_by(&perm), "not sorted under {perm:?}");
        assert_eq!(sorted.canonical_entries(), before);
    });
}

#[test]
fn csf_roundtrips_coo() {
    qc::check("csf roundtrips coo", 64, |g| {
        let t = gen_tensor(g);
        let perm = g.permutation(3);
        let team = TaskTeam::new(2);
        let csf = Csf::build(&t, &perm, &team, SortVariant::AllOpts);
        assert_eq!(csf.nnz(), t.nnz());
        if t.nnz() > 0 {
            assert_eq!(csf.to_coo().canonical_entries(), t.canonical_entries());
            assert_eq!(csf.slice_nnz().iter().sum::<usize>(), t.nnz());
        }
    });
}

/// A random tensor of the given order (dims 1..=8 per mode, duplicate
/// coordinates allowed; ~1 case in 5 is empty or a singleton).
fn gen_tensor_of_order(g: &mut Gen, order: usize) -> SparseTensor {
    let dims: Vec<usize> = (0..order).map(|_| g.usize_in(1..9)).collect();
    let nnz = match g.usize_in(0..10) {
        0 => 0,
        1 => 1,
        _ => g.usize_in(2..150),
    };
    let mut t = SparseTensor::new(dims.clone());
    for _ in 0..nnz {
        let coord: Vec<u32> = dims.iter().map(|&d| g.usize_in(0..d) as u32).collect();
        t.push(&coord, g.f64_in(-5.0, 5.0));
    }
    t
}

/// The flat-slab CSF must agree with the pre-refactor nested-`Vec`
/// construction level by level, and round-trip back to COO, for every
/// allocation policy, orders 3 through 5, including empty and singleton
/// tensors and tensors with duplicate coordinates.
#[test]
fn flat_csf_matches_nested_oracle_and_roundtrips() {
    qc::check("flat csf vs nested oracle", 48, |g| {
        let order = g.usize_in(3..6);
        let t = gen_tensor_of_order(g, order);
        let team = TaskTeam::new(g.usize_in(1..4));
        for alloc in [CsfAlloc::One, CsfAlloc::Two, CsfAlloc::All] {
            let set = CsfSet::build(&t, alloc, &team, SortVariant::AllOpts);
            for csf in set.csfs() {
                let oracle = splatt::core::csf::nested::build(
                    &t,
                    csf.dim_perm(),
                    &team,
                    SortVariant::AllOpts,
                );
                splatt::core::csf::nested::assert_equivalent(csf, &oracle);
                assert_eq!(csf.nnz(), t.nnz());
                if t.nnz() > 0 {
                    assert_eq!(csf.to_coo().canonical_entries(), t.canonical_entries());
                }
            }
        }
    });
}

#[test]
fn mttkrp_matches_reference() {
    qc::check("mttkrp matches coo oracle", 64, |g| {
        let t = gen_tensor(g);
        let mode = g.usize_in(0..3);
        let rank = g.usize_in(1..6);
        let priv_force = g.bool();
        let team = TaskTeam::new(2);
        let set = CsfSet::build(&t, CsfAlloc::Two, &team, SortVariant::AllOpts);
        let factors = gen_factors(&t, rank, 77);
        let cfg = MttkrpConfig {
            priv_threshold: if priv_force { 1e12 } else { 0.0 },
            ..Default::default()
        };
        let mut ws = MttkrpWorkspace::new(&cfg, 2);
        let mut out = Matrix::zeros(t.dims()[mode], rank);
        mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, &cfg);
        let expect = mttkrp_coo(&t, &factors, mode);
        assert!(
            out.approx_eq(&expect, 1e-8),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    });
}

/// The exhaustive kernel matrix the observability PR pins down: every
/// MatrixAccess variant x every kernel kind (root / internal / leaf,
/// via `CsfAlloc::One`'s single tree) x both synchronization paths
/// (privatized replicas vs the lock pool, under every lock strategy),
/// each checked against the naive dense COO oracle within 1e-9.
#[test]
fn mttkrp_kernel_matrix_matches_oracle() {
    let ntasks = 3;
    let rank = 4;
    let team = TaskTeam::new(ntasks);
    qc::check("access x kernel x sync matrix", 8, |g| {
        let t = gen_tensor(g);
        if t.nnz() == 0 {
            return;
        }
        let set = CsfSet::build(&t, CsfAlloc::One, &team, SortVariant::AllOpts);
        let factors = gen_factors(&t, rank, g.u64());
        let oracles: Vec<Matrix> = (0..3).map(|m| mttkrp_coo(&t, &factors, m)).collect();

        let access_variants = [
            MatrixAccess::RowCopy,
            MatrixAccess::Index2D,
            MatrixAccess::PointerChecked,
            MatrixAccess::PointerZip,
        ];
        let sync_paths: [(f64, LockStrategy); 4] = [
            (1e12, LockStrategy::Spin), // privatized: strategy irrelevant
            (0.0, LockStrategy::Spin),
            (0.0, LockStrategy::Sleep),
            (0.0, LockStrategy::Os),
        ];
        for access in access_variants {
            for (priv_threshold, locks) in sync_paths {
                let cfg = MttkrpConfig {
                    access,
                    locks,
                    priv_threshold,
                    ..Default::default()
                };
                let mut ws = MttkrpWorkspace::new(&cfg, ntasks);
                let mut kinds = Vec::new();
                for (mode, oracle) in oracles.iter().enumerate() {
                    kinds.push(set.for_mode(mode).1);
                    let mut out = Matrix::zeros(t.dims()[mode], rank);
                    mttkrp(&set, &factors, mode, &mut out, &mut ws, &team, &cfg);
                    assert!(
                        out.approx_eq(oracle, 1e-9),
                        "{access:?}/{locks:?}/priv={priv_threshold} mode {mode} \
                         ({:?}): max diff {}",
                        set.for_mode(mode).1,
                        out.max_abs_diff(oracle)
                    );
                }
                // one CSF tree serves all three kernel shapes
                assert!(kinds.iter().any(|k| matches!(k, KernelKind::Root)));
                assert!(kinds.iter().any(|k| matches!(k, KernelKind::Internal(_))));
                assert!(kinds.iter().any(|k| matches!(k, KernelKind::Leaf)));
            }
        }
    });
}

#[test]
fn gramians_are_psd() {
    qc::check("gramians are psd", 64, |g| {
        let rows = g.usize_in(1..30);
        let cols = g.usize_in(1..8);
        let a = Matrix::random(rows, cols, g.u64());
        let gram = mat_ata(&a);
        assert!(gram.approx_eq(&gram.transpose(), 1e-12));
        let e = jacobi_eigen(&gram);
        for &w in &e.values {
            assert!(w > -1e-9, "negative eigenvalue {w}");
        }
    });
}

#[test]
fn cholesky_solve_is_inverse_application() {
    qc::check("cholesky solves", 64, |g| {
        let n = g.usize_in(1..8);
        let seed = g.u64();
        let a = Matrix::random(n + 3, n, seed);
        let mut v = mat_ata(&a);
        for i in 0..n {
            v[(i, i)] += 1.0; // guarantee SPD
        }
        let x_true = Matrix::random(4, n, seed.wrapping_add(1));
        let mut b = gemm(&x_true, &v);
        let l = cholesky_factor(&v).unwrap();
        cholesky_solve(&l, &mut b);
        assert!(
            b.approx_eq(&x_true, 1e-6),
            "max diff {}",
            b.max_abs_diff(&x_true)
        );
    });
}

#[test]
fn eigen_reconstructs() {
    qc::check("eigen reconstructs", 64, |g| {
        let n = g.usize_in(1..8);
        let gram = mat_ata(&Matrix::random(n + 2, n, g.u64()));
        let e = jacobi_eigen(&gram);
        assert!(e.reconstruct().approx_eq(&gram, 1e-8));
    });
}

#[test]
fn coalesce_preserves_coordinate_sums() {
    qc::check("coalesce preserves sums", 64, |g| {
        let t = gen_tensor(g);
        use std::collections::HashMap;
        let mut sums: HashMap<Vec<u32>, f64> = HashMap::new();
        for x in 0..t.nnz() {
            *sums.entry(t.coord(x)).or_insert(0.0) += t.vals()[x];
        }
        let mut c = t.clone();
        c.coalesce();
        let entries = c.canonical_entries();
        for w in entries.windows(2) {
            assert_ne!(&w[0].0, &w[1].0, "duplicate survived coalesce");
        }
        for (coord, v) in &entries {
            let expect = sums.get(coord).copied().unwrap_or(0.0);
            assert!((v - expect).abs() < 1e-12);
        }
        let nonzero_sums = sums.values().filter(|v| **v != 0.0).count();
        assert_eq!(entries.len(), nonzero_sums);
    });
}

#[test]
fn tiled_mttkrp_matches_reference() {
    qc::check("tiled mttkrp matches oracle", 64, |g| {
        let t = gen_tensor(g);
        if t.nnz() == 0 {
            return;
        }
        let mode = g.usize_in(0..3);
        let ntiles = g.usize_in(1..5);
        let rank = g.usize_in(1..5);
        let team = TaskTeam::new(2);
        let tiled = splatt::core::TiledCsf::build(&t, mode, ntiles, &team, SortVariant::AllOpts);
        let factors = gen_factors(&t, rank, 31);
        let cfg = MttkrpConfig::default();
        let mut out = Matrix::zeros(t.dims()[mode], rank);
        splatt::core::mttkrp::mttkrp_tiled(&tiled, &factors, &mut out, &team, &cfg);
        let expect = mttkrp_coo(&t, &factors, mode);
        assert!(
            out.approx_eq(&expect, 1e-8),
            "max diff {}",
            out.max_abs_diff(&expect)
        );
    });
}

#[test]
fn permute_modes_preserves_values() {
    qc::check("permute_modes preserves", 64, |g| {
        let t = gen_tensor(g);
        let p = t.permute_modes(&[2, 0, 1]);
        assert_eq!(p.nnz(), t.nnz());
        let mut vals_a: Vec<f64> = t.vals().to_vec();
        let mut vals_b: Vec<f64> = p.vals().to_vec();
        vals_a.sort_by(f64::total_cmp);
        vals_b.sort_by(f64::total_cmp);
        assert_eq!(vals_a, vals_b);
        // inverse permutation restores the original
        assert_eq!(p.permute_modes(&[1, 2, 0]), t);
    });
}

#[test]
fn split_holdout_partitions() {
    qc::check("split_holdout partitions", 64, |g| {
        let t = gen_tensor(g);
        let frac = g.f64();
        let seed = g.u64();
        let (train, test) = t.split_holdout(frac, seed);
        assert_eq!(train.nnz() + test.nnz(), t.nnz());
        let mut all = train.canonical_entries();
        all.extend(test.canonical_entries());
        all.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        assert_eq!(all, t.canonical_entries());
    });
}

#[test]
fn kruskal_model_roundtrips() {
    qc::check("kruskal io roundtrips", 64, |g| {
        let rank = g.usize_in(1..5);
        let seed = g.u64();
        let model = splatt::KruskalModel {
            lambda: (0..rank).map(|r| (r + 1) as f64).collect(),
            factors: vec![
                Matrix::random(6, rank, seed),
                Matrix::random(4, rank, seed.wrapping_add(1)),
                Matrix::random(5, rank, seed.wrapping_add(2)),
            ],
        };
        let mut buf = Vec::new();
        model.write(&mut buf).unwrap();
        let back = splatt::KruskalModel::read(buf.as_slice()).unwrap();
        assert_eq!(back.lambda, model.lambda);
        for (a, b) in back.factors.iter().zip(&model.factors) {
            assert!(a.approx_eq(b, 0.0));
        }
    });
}

#[test]
fn tns_roundtrip() {
    qc::check("tns io roundtrips", 64, |g| {
        let t = gen_tensor(g);
        if t.nnz() == 0 {
            return;
        }
        let mut buf = Vec::new();
        splatt::tensor::io::write_tns(&t, &mut buf).unwrap();
        let back = splatt::tensor::io::read_tns(buf.as_slice()).unwrap();
        assert_eq!(back.canonical_entries(), t.canonical_entries());
    });
}
