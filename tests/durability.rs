//! Disk-fault-injected durability tests for the `splatt-store` layer.
//!
//! Three pins, matching the crate's contract:
//!
//! 1. **WAL recovery is byte-exact**: truncating the log at *every*
//!    byte offset of the tail record recovers exactly the maximal
//!    clean prefix of records — never a partial record, never a hole.
//! 2. **Crash storm**: an ingest run is killed at every injected I/O
//!    operation; after each crash, recovery restores at least every
//!    acknowledged batch, the recovered delta merges into the base
//!    tensor bit-identically to a clean-replay oracle, a warm-started
//!    CP-ALS refit is bit-identical to the oracle's refit, and the
//!    refreshed model republishes into a serving [`ModelRegistry`]
//!    while an old pin keeps serving.
//! 3. **Adversarial corruption**: truncated / bit-flipped / padded
//!    framed artifacts (models and checkpoints) always produce a typed
//!    error — never a panic, never a silently wrong parse.
//!
//! The crash storm writes `target/store-recovery-report.json` so CI
//! can upload the recovery evidence as an artifact.

use splatt::faults::IoFaultPlan;
use splatt::rt::qc::{self, Gen};
use splatt::serve::ModelRegistry;
use splatt::store::{
    counters_snapshot, decode_delta, encode_delta, parse_frame_at, Manifest, StoreError, Wal,
    WalOptions,
};
use splatt::{try_cp_als, Checkpoint, CpalsOptions, KruskalModel, Matrix, SparseTensor};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("splatt_durability_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fixed tensor dims for the storm; every delta coordinate stays in
/// range so the merged tensor keeps the base's dims (and the warm-start
/// checkpoint stays valid).
const DIMS: [usize; 3] = [9, 7, 5];

fn gen_batch(g: &mut Gen, len: usize) -> Vec<(Vec<u32>, f64)> {
    (0..len)
        .map(|_| {
            let coord = DIMS.iter().map(|&d| g.usize_in(0..d) as u32).collect();
            (coord, g.f64_in(-2.0, 2.0))
        })
        .collect()
}

fn gen_base(g: &mut Gen, nnz: usize) -> SparseTensor {
    let mut t = SparseTensor::new(DIMS.to_vec());
    for (coord, val) in gen_batch(g, nnz) {
        t.push(&coord, val);
    }
    // Canonical entry order up front, so "base with zero deltas merged"
    // and a bare clone of the base are bit-identical tensors.
    t.coalesce();
    t
}

/// Every f64 bit of a model, for exact (not approximate) comparison.
fn model_bits(m: &KruskalModel) -> Vec<u64> {
    let mut bits: Vec<u64> = m.lambda.iter().map(|v| v.to_bits()).collect();
    for f in &m.factors {
        bits.extend(f.as_slice().iter().map(|v| v.to_bits()));
    }
    bits
}

fn tensor_bits(t: &SparseTensor) -> (Vec<usize>, Vec<Vec<u32>>, Vec<u64>) {
    let inds = (0..t.order()).map(|m| t.ind(m).to_vec()).collect();
    let vals = t.vals().iter().map(|v| v.to_bits()).collect();
    (t.dims().to_vec(), inds, vals)
}

/// The ingest sequence the CLI performs, parameterized by a fault plan:
/// append + group-commit one batch at a time, then publish a manifest.
/// Returns how many batches were acknowledged durable before any crash.
fn run_ingest(
    dir: &Path,
    batches: &[Vec<(Vec<u32>, f64)>],
    plan: Option<Arc<IoFaultPlan>>,
) -> (usize, Result<(), StoreError>) {
    let mut acked = 0usize;
    let res = (|| {
        let (mut wal, _recovery) = Wal::open(
            dir,
            WalOptions {
                // Tiny segments so the storm also exercises rotation
                // and multi-segment recovery.
                segment_bytes: 256,
                plan: plan.clone(),
            },
        )?;
        for batch in batches {
            let payload = encode_delta(DIMS.len(), batch);
            wal.append(&payload)?;
            if wal.commit()?.is_some() {
                acked += 1;
            }
        }
        let mut manifest = Manifest::load(dir, plan.as_deref())?.unwrap_or_default();
        if let Some(seq) = wal.acked_seq() {
            manifest.set("acked_seq", &seq.to_string());
        }
        manifest.publish(dir, plan.as_deref())?;
        Ok(())
    })();
    (acked, res)
}

/// Merge the first `n` batches into a clone of `base` (the clean-replay
/// oracle for a recovery that restored `n` records).
fn merged_prefix(base: &SparseTensor, batches: &[Vec<(Vec<u32>, f64)>], n: usize) -> SparseTensor {
    let mut t = base.clone();
    let entries: Vec<(Vec<u32>, f64)> = batches[..n].iter().flatten().cloned().collect();
    t.merge_entries(&entries);
    t
}

#[test]
fn wal_recovery_is_exact_at_every_tail_byte_offset() {
    let dir = test_dir("wal_cut");
    qc::check("wal cut at every tail byte", 6, |g| {
        // Build a WAL of a few individually-committed delta batches.
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let nbatches = g.usize_in(2..5);
        let batches: Vec<Vec<(Vec<u32>, f64)>> = (0..nbatches)
            .map(|_| {
                let len = g.usize_in(1..20);
                gen_batch(g, len)
            })
            .collect();
        let (acked, res) = run_ingest(&dir, &batches, None);
        res.unwrap();
        assert_eq!(acked, nbatches);

        // The ingest uses 256-byte segments, so records spread over
        // several files; the cut sweep targets the *final* segment
        // (recovery's torn-tail domain).
        let mut seg = 0u64;
        while dir.join(format!("wal-{:06}.log", seg + 1)).exists() {
            seg += 1;
        }
        let seg_path = dir.join(format!("wal-{seg:06}.log"));
        let bytes = std::fs::read(&seg_path).unwrap();

        // Frame boundaries within the final segment.
        let mut ends = Vec::new();
        let mut off = 0usize;
        while off < bytes.len() {
            let (_, next) = parse_frame_at(&bytes, off).expect("clean WAL parses");
            ends.push(next);
            off = next;
        }
        let records_before_final_seg = {
            let rec = Wal::recover(&dir, None).unwrap();
            rec.records.len() - ends.len()
        };
        let tail_start = if ends.len() > 1 {
            ends[ends.len() - 2]
        } else {
            0
        };

        // Exhaustive over the tail record, strided over earlier bytes.
        let cuts: Vec<usize> = (0..tail_start)
            .step_by(7)
            .chain(tail_start..bytes.len())
            .collect();
        for cut in cuts {
            std::fs::write(&seg_path, &bytes[..cut]).unwrap();
            let rec = Wal::recover(&dir, None).unwrap();
            let complete_frames = ends.iter().filter(|&&e| e <= cut).count();
            let expect = records_before_final_seg + complete_frames;
            assert_eq!(
                rec.records.len(),
                expect,
                "cut at {cut}/{} recovered {} records, expected {expect}",
                bytes.len(),
                rec.records.len()
            );
            // Recovered records are a contiguous, bit-exact prefix.
            for (i, record) in rec.records.iter().enumerate() {
                assert_eq!(record.seq, i as u64, "sequence hole after cut");
                assert_eq!(
                    record.payload,
                    encode_delta(DIMS.len(), &batches[i]),
                    "record {i} payload altered by recovery"
                );
            }
            // Recovery physically truncated the torn tail: a second
            // recovery is a no-op on an already-clean log.
            let again = Wal::recover(&dir, None).unwrap();
            assert_eq!(again.records.len(), expect);
            assert_eq!(again.truncated_bytes, 0, "recovery must be idempotent");
            // Restore the full segment for the next cut.
            std::fs::write(&seg_path, &bytes).unwrap();
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_storm_recovery_is_lossless_and_refit_matches_clean_oracle() {
    let mut g = Gen::from_seed(0xD15C0D);
    let base = gen_base(&mut g, 60);
    let batches: Vec<Vec<(Vec<u32>, f64)>> = (0..4).map(|_| gen_batch(&mut g, 12)).collect();

    // Warm-start source: a short checkpointed run on the base tensor.
    let ck_dir = test_dir("storm_ck");
    let seed_opts = CpalsOptions {
        rank: 3,
        max_iters: 2,
        tolerance: 0.0,
        ntasks: 1,
        checkpoint_dir: Some(ck_dir.clone()),
        ..Default::default()
    };
    try_cp_als(&base, &seed_opts, None).unwrap();
    let ck_path = Checkpoint::latest_in(&ck_dir)
        .unwrap()
        .expect("checkpoint written");
    let refit_opts = CpalsOptions {
        rank: 3,
        max_iters: 4,
        tolerance: 0.0,
        ntasks: 1,
        resume_from: Some(ck_path),
        ..Default::default()
    };
    let refit = |t: &SparseTensor| try_cp_als(t, &refit_opts, None).unwrap().model;

    // Quiet run: count the I/O ops the full ingest performs.
    let quiet = Arc::new(IoFaultPlan::quiet(0xD15C));
    let quiet_dir = test_dir("storm_quiet");
    let (acked, res) = run_ingest(&quiet_dir, &batches, Some(quiet.clone()));
    res.unwrap();
    assert_eq!(acked, batches.len());
    let total_ops = quiet.ops_seen();
    assert!(
        total_ops > 8,
        "storm needs ops to crash at, saw {total_ops}"
    );
    std::fs::remove_dir_all(&quiet_dir).ok();

    // Clean-replay oracles: for every possible recovered prefix length,
    // replay that prefix through a fresh WAL and refit from it.
    let mut oracle_bits: Vec<Vec<u64>> = Vec::new();
    for n in 0..=batches.len() {
        let oracle_dir = test_dir(&format!("storm_oracle_{n}"));
        let (a, r) = run_ingest(&oracle_dir, &batches[..n], None);
        r.unwrap();
        assert_eq!(a, n);
        let rec = Wal::recover(&oracle_dir, None).unwrap();
        let mut merged = base.clone();
        for record in &rec.records {
            let (_, entries) = decode_delta(&record.payload).unwrap();
            merged.merge_entries(&entries);
        }
        let direct = merged_prefix(&base, &batches, n);
        assert_eq!(
            tensor_bits(&merged),
            tensor_bits(&direct),
            "clean replay of {n} batches diverged from a direct merge"
        );
        oracle_bits.push(model_bits(&refit(&merged)));
        std::fs::remove_dir_all(&oracle_dir).ok();
    }

    // The storm: crash the ingest at every injected I/O op.
    let mut crashes = 0u64;
    let mut refits_verified = vec![false; batches.len() + 1];
    let mut min_recovered = usize::MAX;
    for k in 0..total_ops {
        let dir = test_dir(&format!("storm_{k}"));
        let plan = Arc::new(IoFaultPlan::quiet(0xD15C).with_crash_at_op(k));
        let (acked, res) = run_ingest(&dir, &batches, Some(plan));
        assert!(res.is_err(), "crash scheduled at op {k} must fire");
        assert!(
            matches!(res, Err(ref e) if e.is_crash()),
            "op {k}: expected a crash, got {res:?}"
        );
        crashes += 1;

        // Post-crash recovery with no faults: the restart path.
        let rec = Wal::recover(&dir, None).unwrap();
        let recovered = rec.records.len();
        assert!(
            recovered >= acked,
            "op {k}: {acked} batches were acknowledged durable but only \
             {recovered} recovered — durability violated"
        );
        assert!(recovered <= batches.len());
        min_recovered = min_recovered.min(recovered);
        let mut merged = base.clone();
        for (i, record) in rec.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64, "op {k}: recovery left a hole");
            assert_eq!(
                record.payload,
                encode_delta(DIMS.len(), &batches[i]),
                "op {k}: recovered record {i} is not the batch that was appended"
            );
            let (order, entries) = decode_delta(&record.payload).unwrap();
            assert_eq!(order, DIMS.len());
            merged.merge_entries(&entries);
        }
        assert_eq!(
            tensor_bits(&merged),
            tensor_bits(&merged_prefix(&base, &batches, recovered)),
            "op {k}: recovered merge diverged from the clean oracle"
        );

        // The manifest is atomically published: a crash anywhere leaves
        // it absent, fully old, or fully new — never torn.
        let manifest = Manifest::load(&dir, None)
            .unwrap_or_else(|e| panic!("op {k}: crash left a torn manifest: {e}"));
        if let Some(m) = manifest {
            if let Some(s) = m.get("acked_seq") {
                let manifest_acked: usize = s.parse::<usize>().unwrap() + 1;
                assert!(
                    recovered >= manifest_acked,
                    "op {k}: manifest promises seq {s} but only {recovered} recovered"
                );
            }
        }

        // Warm-started refit on the recovered tensor must be
        // bit-identical to the clean-replay oracle's refit (checked
        // once per distinct prefix length — the tensors are already
        // proven bit-identical above).
        if !refits_verified[recovered] {
            assert_eq!(
                model_bits(&refit(&merged)),
                oracle_bits[recovered],
                "op {k}: warm-started refit diverged from the clean oracle"
            );
            refits_verified[recovered] = true;
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(crashes, total_ops);
    assert!(
        refits_verified[batches.len()],
        "no crash point left the full ingest recoverable"
    );
    assert_eq!(min_recovered, 0, "op 0 crashes before anything is durable");

    // The refreshed model republishes into the serving registry while
    // an old pin keeps serving (queries are never blocked on a reload).
    let full = merged_prefix(&base, &batches, batches.len());
    let serve_dir = test_dir("storm_serve");
    let model_path = serve_dir.join("model.splatt");
    let registry = ModelRegistry::new();
    splatt::core::save_model_path(&refit(&base), &model_path, 1).unwrap();
    assert_eq!(registry.publish_path("m", &model_path).unwrap(), 1);
    let pinned = registry.get("m", 1).unwrap();
    splatt::core::save_model_path(&refit(&full), &model_path, 2).unwrap();
    assert_eq!(registry.publish_path("m", &model_path).unwrap(), 2);
    assert_eq!(registry.get("m", 0).unwrap().version, 2);
    assert_eq!(
        model_bits(&registry.get("m", 0).unwrap().model),
        oracle_bits[batches.len()],
        "republished model is not the recovered refit"
    );
    assert_eq!(
        model_bits(&pinned.model),
        model_bits(&refit(&base)),
        "republish must not disturb an in-flight pin"
    );
    std::fs::remove_dir_all(&serve_dir).ok();
    std::fs::remove_dir_all(&ck_dir).ok();

    // Evidence artifact for CI.
    let c = counters_snapshot();
    let report = format!(
        "{{\n  \"schema\": \"splatt-recovery-report-v1\",\n  \
         \"crash_points_tested\": {total_ops},\n  \
         \"crashes_observed\": {crashes},\n  \
         \"batches\": {},\n  \
         \"refit_prefixes_verified\": {},\n  \
         \"wal_appends\": {},\n  \"wal_commits\": {},\n  \"fsyncs\": {},\n  \
         \"atomic_publishes\": {},\n  \"segments_rotated\": {},\n  \
         \"recoveries\": {},\n  \"records_recovered\": {},\n  \
         \"torn_bytes_truncated\": {},\n  \"checksum_failures\": {}\n}}\n",
        batches.len(),
        refits_verified.iter().filter(|&&v| v).count(),
        c.wal_appends,
        c.wal_commits,
        c.fsyncs,
        c.atomic_publishes,
        c.segments_rotated,
        c.recoveries,
        c.records_recovered,
        c.torn_bytes_truncated,
        c.checksum_failures
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/store-recovery-report.json");
    std::fs::write(&out, report).unwrap();
}

#[test]
fn corrupted_artifacts_error_typed_and_never_parse_wrong() {
    let dir = test_dir("adversarial");
    qc::check("corrupt framed artifacts", 48, |g| {
        let model = KruskalModel {
            lambda: vec![g.f64_in(0.5, 3.0), g.f64_in(0.5, 3.0)],
            factors: vec![Matrix::random(4, 2, g.u64()), Matrix::random(3, 2, g.u64())],
        };
        let model_path = dir.join("model.splatt");
        splatt::core::save_model_path(&model, &model_path, 1).unwrap();
        let clean = std::fs::read(&model_path).unwrap();

        let mut bytes = clean.clone();
        match g.usize_in(0..3) {
            0 => bytes.truncate(g.usize_in(0..bytes.len())),
            1 => {
                let bit = g.usize_in(0..bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            _ => bytes.extend((0..g.usize_in(1..16)).map(|_| g.u64() as u8)),
        }
        std::fs::write(&model_path, &bytes).unwrap();
        match splatt::core::load_model_path(&model_path) {
            // Typed error: corruption detected. Never a panic.
            Err(_) => {}
            // The only acceptable Ok is a parse of bit-identical
            // content — "silently wrong" is the one forbidden outcome.
            Ok(parsed) => assert_eq!(
                model_bits(&parsed),
                model_bits(&model),
                "corrupted model file parsed to different content"
            ),
        }

        // Same contract for checkpoints.
        let ck = Checkpoint {
            iteration: 1,
            lambda: model.lambda.clone(),
            fits: vec![0.5],
            factors: model.factors.clone(),
        };
        let ck_path = ck.write_to_dir(&dir).unwrap();
        let clean_ck = std::fs::read(&ck_path).unwrap();
        let mut ck_bytes = clean_ck.clone();
        match g.usize_in(0..3) {
            0 => ck_bytes.truncate(g.usize_in(0..ck_bytes.len())),
            1 => {
                let bit = g.usize_in(0..ck_bytes.len() * 8);
                ck_bytes[bit / 8] ^= 1 << (bit % 8);
            }
            _ => ck_bytes.extend((0..g.usize_in(1..16)).map(|_| g.u64() as u8)),
        }
        std::fs::write(&ck_path, &ck_bytes).unwrap();
        match Checkpoint::read_from(&ck_path) {
            Err(_) => {}
            Ok(parsed) => assert_eq!(parsed, ck, "corrupted checkpoint parsed differently"),
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}
