//! Streaming-ingest → online-refresh → serving loopback tests.
//!
//! Three pins, matching the refresh subsystem's contract:
//!
//! 1. **Warm-start parity**: seeding CP-ALS from a converged model
//!    reaches the same fit as the cold run that produced it (gap ≤ 1e-6)
//!    without spending the cold run's iteration budget — across seeds.
//! 2. **Zero-downtime loopback**: while a reader thread hammers a
//!    `ServeEngine` with queries, K ingest→refresh→republish rounds run
//!    to completion with **zero failed and zero stale** queries, each
//!    round bumping the registry version by exactly one. The incremental
//!    merge's total coordinate comparisons stay asymptotically below
//!    what K full re-coalesces would pay — asserted on the probe merge
//!    counters, not wall-clock.
//! 3. **Crash storm**: a refresh round is killed at every injected I/O
//!    op. After every crash the store reopens to a watermark-consistent
//!    state (watermark all-or-nothing, manifest and model artifact never
//!    torn, resident tensor bit-identical to the watermark's clean-merge
//!    oracle) and a clean redo round converges to the same final
//!    watermark.

use splatt::core::refresh::{RefreshEngine, RefreshError, RefreshOptions, REFRESH_MODEL_FILE};
use splatt::faults::IoFaultPlan;
use splatt::serve::{Query, ServeConfig, ServeEngine};
use splatt::store::{encode_delta, Manifest, Wal, WalOptions};
use splatt::tensor::synth::planted_dense;
use splatt::{cp_als, CancelToken, CpalsOptions, SparseTensor};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("splatt_refresh_it_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type Batch = Vec<(Vec<u32>, f64)>;

/// A planted low-rank tensor's canonical entries split into `k` batches.
fn planted_batches(dims: &[usize], k: usize, seed: u64) -> Vec<Batch> {
    let (tensor, _truth) = planted_dense(dims, 2, 0.0, seed);
    let all = tensor.canonical_entries();
    let per = all.len().div_ceil(k);
    all.chunks(per).map(<[_]>::to_vec).collect()
}

/// Write `batches` as one WAL record each and publish an order-stamped
/// manifest — the state `splatt ingest` leaves behind.
fn ingest(dir: &Path, batches: &[Batch], order: usize) {
    let (mut wal, _recovery) = Wal::open(dir, WalOptions::default()).unwrap();
    for b in batches {
        wal.append(&encode_delta(order, b)).unwrap();
        wal.commit().unwrap();
    }
    let mut manifest = Manifest::load(dir, None).unwrap().unwrap_or_default();
    manifest.set("order", &order.to_string());
    manifest.publish(dir, None).unwrap();
}

fn quick_opts(max_iters: usize) -> RefreshOptions {
    RefreshOptions {
        cpals: CpalsOptions {
            rank: 2,
            max_iters,
            tolerance: 1e-9,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Bit-exact tensor identity (coordinates plus value bit patterns).
fn tensor_bits(t: &SparseTensor) -> (Vec<usize>, Vec<Vec<u32>>, Vec<u64>) {
    let inds = (0..t.order()).map(|m| t.ind(m).to_vec()).collect();
    let vals = t.vals().iter().map(|v| v.to_bits()).collect();
    (t.dims().to_vec(), inds, vals)
}

// ---------------------------------------------------------------------
// 1. Warm-start parity
// ---------------------------------------------------------------------

#[test]
fn warm_start_reaches_cold_fit_within_1e6_across_seeds() {
    for seed in [3u64, 17, 41, 97, 1234] {
        let (tensor, _truth) = planted_dense(&[8, 7, 6], 2, 0.0, seed);
        // Tolerance-stopped so the cold run genuinely converges: with a
        // bare iteration cap the warm run would keep improving past
        // where cold was cut off and the "gap" would measure leftover
        // convergence, not warm-start fidelity.
        let cold_opts = CpalsOptions {
            rank: 2,
            max_iters: 2000,
            tolerance: 1e-7,
            seed,
            ..Default::default()
        };
        let cold = cp_als(&tensor, &cold_opts);
        let warm_opts = CpalsOptions {
            warm_start: Some(cold.model.clone()),
            ..cold_opts.clone()
        };
        let warm = cp_als(&tensor, &warm_opts);
        let gap = (warm.fit - cold.fit).abs();
        assert!(
            gap <= 1e-6,
            "seed {seed}: warm fit {} vs cold fit {} (gap {gap:.3e})",
            warm.fit,
            cold.fit
        );
        assert!(
            warm.iterations <= cold.iterations,
            "seed {seed}: warm start must not need more iterations \
             ({} vs {})",
            warm.iterations,
            cold.iterations
        );
    }
}

// ---------------------------------------------------------------------
// 2. Ingest → refresh → query loopback
// ---------------------------------------------------------------------

#[test]
fn loopback_republish_serves_every_query_and_merges_incrementally() {
    let dir = test_dir("loopback");
    let batches = planted_batches(&[10, 9, 8], 6, 42);
    let rounds = batches.len();
    // Order-stamped empty store; batches stream in during the test.
    let mut manifest = Manifest::default();
    manifest.set("order", "3");
    manifest.publish(&dir, None).unwrap();

    let serve = ServeEngine::start(ServeConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let latest = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let stale = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));

    let reader = {
        let serve = serve.clone();
        let (stop, latest) = (stop.clone(), latest.clone());
        let (failed, stale, served) = (failed.clone(), stale.clone(), served.clone());
        std::thread::spawn(move || {
            let cancel = CancelToken::new();
            while !stop.load(Ordering::SeqCst) {
                let floor = latest.load(Ordering::SeqCst);
                if floor == 0 {
                    std::thread::yield_now();
                    continue;
                }
                // Latest-version query: must never fail mid-republish.
                let q = Query::TopK {
                    mode: 0,
                    k: 3,
                    fixed: vec![0, 0],
                };
                match serve.query("live", 0, q, None, &cancel, || false) {
                    Ok(_) => {
                        let v = serve
                            .registry()
                            .get("live", 0)
                            .map(|m| m.version)
                            .unwrap_or(0);
                        if v < floor {
                            stale.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    Err(_) => {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                }
                // The version pinned before the republish must stay
                // servable after it (no eviction on republish).
                let q = Query::Entry {
                    coords: vec![0, 0, 0],
                };
                if serve
                    .query("live", floor, q, None, &cancel, || false)
                    .is_err()
                {
                    failed.fetch_add(1, Ordering::SeqCst);
                }
                served.fetch_add(2, Ordering::SeqCst);
            }
        })
    };

    let mut eng = RefreshEngine::open(&dir, None, quick_opts(12)).unwrap();
    let mut incremental_cmp = 0u64;
    let mut full_coalesce_bound = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        ingest(&dir, std::slice::from_ref(batch), 3);
        let out = eng
            .refresh_once()
            .unwrap()
            .expect("each round has one pending record");
        assert_eq!(out.applied, 1);
        assert_eq!(out.watermark, i as u64 + 1);
        let version = serve
            .registry()
            .publish_path("live", &out.model_path)
            .unwrap();
        assert_eq!(
            version,
            i as u64 + 1,
            "each republish must mint exactly the next version"
        );
        latest.store(version, Ordering::SeqCst);

        incremental_cmp += out.merge.compare_ops;
        // What a batch pipeline pays per round: re-coalescing all n
        // resident entries, an n·log2(n) comparison sort.
        let n = out.merge.out_nnz.max(2) as u64;
        full_coalesce_bound += n * (64 - (n - 1).leading_zeros()) as u64;
        // Let the reader overlap with the freshly published version.
        std::thread::sleep(std::time::Duration::from_millis(3));
    }
    stop.store(true, Ordering::SeqCst);
    reader.join().unwrap();

    assert!(
        served.load(Ordering::SeqCst) > 0,
        "the reader must have overlapped the republishes"
    );
    assert_eq!(
        failed.load(Ordering::SeqCst),
        0,
        "no query may fail during republish"
    );
    assert_eq!(
        stale.load(Ordering::SeqCst),
        0,
        "no query may observe a stale latest version"
    );

    // The asymptotic claim, on counters: K incremental merges beat K
    // full re-coalesces with a 2x margin to spare.
    let row = eng.refresh_row();
    assert_eq!(row.merge_compare_ops, incremental_cmp);
    assert_eq!(row.rounds, rounds as u64);
    assert!(
        incremental_cmp * 2 < full_coalesce_bound,
        "incremental merge ({incremental_cmp} comparisons) must undercut \
         {rounds} full coalesces (~{full_coalesce_bound}) by at least 2x"
    );
    // And the refit fit is a real model, warm-started every round.
    assert!(
        row.warm_fit > 0.8,
        "planted rank-2 stream should fit, got {}",
        row.warm_fit
    );

    serve.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// 3. Crash storm
// ---------------------------------------------------------------------

#[test]
fn crash_storm_recovers_watermark_consistent_with_no_torn_publish() {
    let batches = planted_batches(&[8, 7, 6], 3, 7);
    let setup = |dir: &Path| ingest(dir, &batches, 3);

    // Oracle: clean merge of the first `n` records into a unit-dims base.
    let oracle = |n: usize| {
        let mut t = SparseTensor::new(vec![1; 3]);
        for b in &batches[..n] {
            t.merge_entries(b);
        }
        t
    };

    // Quiet run: count every I/O op one open + refresh round draws.
    let quiet_dir = test_dir("storm_quiet");
    setup(&quiet_dir);
    let quiet = Arc::new(IoFaultPlan::quiet(0xBEEF));
    let opts = |plan: Option<Arc<IoFaultPlan>>| RefreshOptions {
        plan,
        ..quick_opts(3)
    };
    let mut eng = RefreshEngine::open(&quiet_dir, None, opts(Some(quiet.clone()))).unwrap();
    let out = eng.refresh_once().unwrap().expect("records pending");
    let final_watermark = out.watermark;
    assert_eq!(final_watermark, batches.len() as u64);
    let total_ops = quiet.ops_seen();
    assert!(total_ops > 0, "storm needs ops to crash at");
    std::fs::remove_dir_all(&quiet_dir).ok();

    let (mut crashes, mut pre_commit, mut post_commit) = (0u64, 0u64, 0u64);
    for k in 0..total_ops {
        let dir = test_dir(&format!("storm_{k}"));
        setup(&dir);
        let plan = Arc::new(IoFaultPlan::quiet(0xBEEF).with_crash_at_op(k));
        let res = (|| -> Result<_, RefreshError> {
            RefreshEngine::open(&dir, None, opts(Some(plan)))?.refresh_once()
        })();
        match res {
            Err(RefreshError::Store(ref e)) if e.is_crash() => crashes += 1,
            other => panic!("op {k}: expected an injected crash, got {other:?}"),
        }

        // Restart path: a clean reopen must land on a consistent state.
        let mut rec = RefreshEngine::open(&dir, None, opts(None))
            .unwrap_or_else(|e| panic!("op {k}: post-crash reopen failed: {e}"));
        let w = rec.watermark();
        assert!(
            w == 0 || w == final_watermark,
            "op {k}: one round is one commit — watermark must be \
             all-or-nothing, got {w}"
        );
        // No torn manifest: a damaged publish would be a typed error here.
        Manifest::load(&dir, None)
            .unwrap_or_else(|e| panic!("op {k}: crash left a torn manifest: {e}"));
        // No torn model artifact: if the file exists at all it parses.
        let model_path = dir.join(REFRESH_MODEL_FILE);
        if model_path.exists() {
            splatt::core::load_model_path(&model_path)
                .unwrap_or_else(|e| panic!("op {k}: crash left a torn model artifact: {e}"));
        }
        if w == final_watermark {
            post_commit += 1;
            assert!(
                rec.model().is_some(),
                "op {k}: a committed round must leave a loadable model"
            );
        } else {
            pre_commit += 1;
        }
        // Resident tensor is bit-identical to the watermark's oracle.
        assert_eq!(
            tensor_bits(rec.tensor()),
            tensor_bits(&oracle(w as usize)),
            "op {k}: resident tensor diverged from the clean-merge oracle"
        );

        // Redo: one clean round reaches the same final watermark.
        match rec.refresh_once().unwrap() {
            Some(redo) => assert_eq!(redo.watermark, final_watermark, "op {k}"),
            None => assert_eq!(
                w, final_watermark,
                "op {k}: nothing pending only after commit"
            ),
        }
        assert_eq!(rec.watermark(), final_watermark, "op {k}");
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(crashes, total_ops, "every op index must crash exactly once");
    assert!(
        pre_commit > 0 && post_commit > 0,
        "storm must observe crashes on both sides of the commit point \
         (pre {pre_commit}, post {post_commit})"
    );
}
