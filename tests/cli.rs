//! End-to-end tests of the `splatt` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn splatt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_splatt"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("splatt_cli_test_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_check_roundtrip() {
    let dir = workdir("gen");
    let tns = dir.join("t.tns");
    let out = splatt()
        .args(["generate", "yelp", "--scale", "0.001", "--seed", "5"])
        .args(["--out", tns.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");

    let out = splatt().args(["stats", tns.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("density"));

    let out = splatt().args(["check", tns.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("nonzeros"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_writes_factors_and_model_then_predict() {
    let dir = workdir("cpd");
    let tns = dir.join("t.tns");
    let model = dir.join("t.kruskal");
    let prefix = dir.join("fac");

    assert!(splatt()
        .args(["generate", "random", "--dims", "12x10x8", "--nnz", "400", "--seed", "3"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "3", "--iters", "5", "--tasks", "2"])
        .args(["--out", prefix.to_str().unwrap(), "--model", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fit"), "{stdout}");
    for m in 0..3 {
        assert!(dir.join(format!("fac.mode{m}.txt")).exists());
    }
    assert!(model.exists());

    // predict on the training coordinates: prints one value per line
    let out = splatt()
        .args(["predict", model.to_str().unwrap(), tns.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert_eq!(lines, 400);
    assert!(String::from_utf8_lossy(&out.stderr).contains("RMSE"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn complete_runs_each_solver() {
    let dir = workdir("complete");
    let tns = dir.join("t.tns");
    assert!(splatt()
        .args(["generate", "random", "--dims", "10x8x6", "--nnz", "300", "--seed", "4"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    for solver in ["als", "sgd", "ccd"] {
        let out = splatt()
            .args(["complete", tns.to_str().unwrap()])
            .args(["--solver", solver, "--rank", "2", "--iters", "3"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("train RMSE"),
            "{solver}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nonneg_flag_is_accepted() {
    let dir = workdir("nonneg");
    let tns = dir.join("t.tns");
    assert!(splatt()
        .args(["generate", "random", "--dims", "8x8x8", "--nnz", "200", "--seed", "6"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "2", "--iters", "3", "--nonneg", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!splatt().output().unwrap().status.success());
    assert!(!splatt().args(["cpd"]).output().unwrap().status.success());
    assert!(!splatt()
        .args(["cpd", "/definitely/not/a/file.tns"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!splatt()
        .args(["frobnicate", "x"])
        .output()
        .unwrap()
        .status
        .success());
}
