//! End-to-end tests of the `splatt` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn splatt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_splatt"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("splatt_cli_test_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_stats_check_roundtrip() {
    let dir = workdir("gen");
    let tns = dir.join("t.tns");
    let out = splatt()
        .args(["generate", "yelp", "--scale", "0.001", "--seed", "5"])
        .args(["--out", tns.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");

    let out = splatt()
        .args(["stats", tns.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("density"));

    let out = splatt()
        .args(["check", tns.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("nonzeros"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_writes_factors_and_model_then_predict() {
    let dir = workdir("cpd");
    let tns = dir.join("t.tns");
    let model = dir.join("t.kruskal");
    let prefix = dir.join("fac");

    assert!(splatt()
        .args(["generate", "random", "--dims", "12x10x8", "--nnz", "400", "--seed", "3"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let out = splatt()
        .args([
            "cpd",
            tns.to_str().unwrap(),
            "--rank",
            "3",
            "--iters",
            "5",
            "--tasks",
            "2",
        ])
        .args([
            "--out",
            prefix.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fit"), "{stdout}");
    for m in 0..3 {
        assert!(dir.join(format!("fac.mode{m}.txt")).exists());
    }
    assert!(model.exists());

    // predict on the training coordinates: prints one value per line
    let out = splatt()
        .args(["predict", model.to_str().unwrap(), tns.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert_eq!(lines, 400);
    assert!(String::from_utf8_lossy(&out.stderr).contains("RMSE"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn complete_runs_each_solver() {
    let dir = workdir("complete");
    let tns = dir.join("t.tns");
    assert!(splatt()
        .args(["generate", "random", "--dims", "10x8x6", "--nnz", "300", "--seed", "4"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    for solver in ["als", "sgd", "ccd"] {
        let out = splatt()
            .args(["complete", tns.to_str().unwrap()])
            .args(["--solver", solver, "--rank", "2", "--iters", "3"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("train RMSE"),
            "{solver}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nonneg_flag_is_accepted() {
    let dir = workdir("nonneg");
    let tns = dir.join("t.tns");
    assert!(splatt()
        .args(["generate", "random", "--dims", "8x8x8", "--nnz", "200", "--seed", "6"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = splatt()
        .args([
            "cpd",
            tns.to_str().unwrap(),
            "--rank",
            "2",
            "--iters",
            "3",
            "--nonneg",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_format_flag_selects_and_reports_dispatch() {
    let dir = workdir("format");
    let tns = dir.join("t.tns");
    assert!(splatt()
        .args(["generate", "random", "--dims", "12x10x8", "--nnz", "400", "--seed", "21"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // --format csf and --format alto converge to matching fits
    let fit_of = |format: &str| {
        let out = splatt()
            .args(["cpd", tns.to_str().unwrap(), "--rank", "3", "--iters", "5"])
            .args(["--tol", "0", "--format", format])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--format {format}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let fit: f64 = stdout
            .lines()
            .find(|l| l.contains("converged: fit"))
            .and_then(|l| l.split_whitespace().nth(2))
            .unwrap()
            .parse()
            .unwrap();
        (fit, stdout)
    };
    let (csf_fit, _) = fit_of("csf");
    let (alto_fit, alto_stdout) = fit_of("alto");
    assert!(
        (csf_fit - alto_fit).abs() < 1e-6,
        "csf fit {csf_fit} vs alto fit {alto_fit}"
    );
    assert!(
        alto_stdout.contains("format dispatch:") && alto_stdout.contains("alto"),
        "alto run did not report its dispatch: {alto_stdout}"
    );

    // --format auto reports per-mode decisions from the baseline
    let (_, auto_stdout) = fit_of("auto");
    assert!(
        auto_stdout.contains("format dispatch:"),
        "auto run did not report decisions: {auto_stdout}"
    );
    let decision_lines = auto_stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("mode ") && l.contains("->"))
        .count();
    assert_eq!(decision_lines, 3, "one decision per mode: {auto_stdout}");

    // unknown format values are typed CLI errors
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--format", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_auto_format_with_corrupt_baseline_warns_and_completes() {
    let dir = workdir("format_fallback");
    let tns = dir.join("t.tns");
    let baseline = dir.join("corrupt.json");
    std::fs::write(&baseline, "{not json").unwrap();
    assert!(splatt()
        .args(["generate", "random", "--dims", "10x8x6", "--nnz", "250", "--seed", "23"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "2", "--iters", "3"])
        .args(["--format", "auto"])
        .args(["--dispatch-baseline", baseline.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "fallback run must still complete: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dispatch degraded"),
        "no typed warning on stderr: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fallback"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_profile_writes_schema_stable_json() {
    use splatt::par::Routine;
    use splatt::probe::{json, PROFILE_SCHEMA};

    let dir = workdir("profile");
    let tns = dir.join("t.tns");
    let prof = dir.join("profile.json");
    assert!(splatt()
        .args(["generate", "random", "--dims", "14x12x10", "--nnz", "500", "--seed", "9"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let iters = 4;
    let ntasks = 2;
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "3"])
        .args([
            "--iters",
            &iters.to_string(),
            "--tasks",
            &ntasks.to_string(),
        ])
        .args(["--profile", prof.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("span tree"), "render missing: {stdout}");
    assert!(
        stdout.contains("load imbalance"),
        "render missing: {stdout}"
    );

    let text = std::fs::read_to_string(&prof).unwrap();
    let doc = json::parse(&text).expect("profile JSON parses");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some(PROFILE_SCHEMA));
    assert_eq!(doc.get("ntasks").unwrap().as_u64(), Some(ntasks));
    assert_eq!(doc.get("iterations").unwrap().as_u64(), Some(iters));

    // every Table III routine row is present
    let routines = doc.get("routines").unwrap().as_array().unwrap();
    let names: Vec<&str> = routines
        .iter()
        .map(|r| r.get("routine").unwrap().as_str().unwrap())
        .collect();
    for r in Routine::ALL {
        assert!(
            names.contains(&r.label()),
            "missing routine row {}",
            r.label()
        );
    }
    let cpd_total = routines
        .iter()
        .find(|r| r.get("routine").unwrap().as_str() == Some("CPD total"))
        .and_then(|r| r.get("seconds").unwrap().as_f64())
        .unwrap();
    assert!(cpd_total > 0.0);

    // per-thread MTTKRP busy time: one entry per task, and the summed
    // busy time fits inside the CPD total times the task count (each
    // task can at most be busy for the whole loop)
    let threads = doc.get("threads").unwrap().as_array().unwrap();
    assert_eq!(threads.len(), ntasks as usize);
    let busy: f64 = threads
        .iter()
        .map(|t| t.get("seconds").unwrap().as_f64().unwrap())
        .sum();
    assert!(busy > 0.0, "no per-thread busy time recorded");
    assert!(
        busy <= cpd_total * ntasks as f64 * 1.5 + 0.05,
        "threads busy {busy}s vs CPD total {cpd_total}s x {ntasks}"
    );

    // span tree: root covers the whole loop, one child per iteration,
    // and nesting holds within clock slack
    let spans = doc.get("spans").unwrap();
    assert_eq!(spans.get("label").unwrap().as_str(), Some("CPD total"));
    let root_secs = spans.get("seconds").unwrap().as_f64().unwrap();
    assert!((root_secs - cpd_total).abs() <= cpd_total * 0.5 + 0.05);
    let iterations = spans.get("children").unwrap().as_array().unwrap();
    assert_eq!(iterations.len(), iters as usize);
    let child_sum: f64 = iterations
        .iter()
        .map(|c| c.get("seconds").unwrap().as_f64().unwrap())
        .sum();
    assert!(child_sum <= root_secs * 1.1 + 0.05);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_fault_plan_checkpoint_and_resume() {
    let dir = workdir("faults");
    let tns = dir.join("t.tns");
    let ckpt = dir.join("ckpts");
    assert!(splatt()
        .args(["generate", "random", "--dims", "14x12x10", "--nnz", "600", "--seed", "11"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // faulted, checkpointed run: the fault table must list the events
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "3", "--iters", "6"])
        .args(["--tol", "0", "--tasks", "2"])
        .args(["--fault-plan", "seed=42,straggler=0.5,nonspd=0.4,horizon=3"])
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fault injection: seed 42"), "{stdout}");
    assert!(stdout.contains("injected faults:"), "{stdout}");
    assert!(
        stdout.contains("straggler") || stdout.contains("non-spd"),
        "no fault rows: {stdout}"
    );
    for k in 1..=6 {
        assert!(
            ckpt.join(format!("ckpt-{k:05}.splatt")).exists(),
            "ckpt {k}"
        );
    }

    // resume from the checkpoint directory (picks the latest)
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "3", "--iters", "8"])
        .args(["--tol", "0", "--tasks", "2"])
        .args(["--resume", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming from"), "{stdout}");
    assert!(stdout.contains("after 8 iterations"), "{stdout}");

    // a malformed plan and a dangling resume path are typed CLI errors
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--fault-plan", "bogus=1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--fault-plan"));
    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--resume", "/no/such/ckpt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cpd_dedup_flag_controls_duplicate_handling() {
    let dir = workdir("dedup");
    let tns = dir.join("dup.tns");
    std::fs::write(&tns, "1 1 1 2.5\n1 1 1 0.5\n2 2 2 1.0\n").unwrap();

    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "1", "--iters", "2"])
        .args(["--dedup", "sum"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("nnz 2"),
        "sum did not coalesce"
    );

    let out = splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "1", "--iters", "2"])
        .args(["--dedup", "error"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("duplicate coordinate"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Generate a small tensor, decompose it, and export the model in the
/// canonical bit-exact format; returns (dir, model path).
fn exported_model(name: &str) -> (PathBuf, PathBuf) {
    let dir = workdir(name);
    let tns = dir.join("t.tns");
    let kruskal = dir.join("m.kruskal");
    let model = dir.join("m.model");
    assert!(splatt()
        .args(["generate", "random", "--dims", "9x8x7", "--nnz", "250", "--seed", "17"])
        .args(["--out", tns.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(splatt()
        .args(["cpd", tns.to_str().unwrap(), "--rank", "3", "--iters", "5"])
        .args(["--model", kruskal.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = splatt()
        .args(["export-model", kruskal.to_str().unwrap()])
        .args(["--out", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("rank 3"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    (dir, model)
}

#[test]
fn export_model_roundtrip_is_bit_exact() {
    let (dir, model_path) = exported_model("export");
    // Re-exporting the canonical format is byte-identical (fixed point).
    let again = dir.join("again.model");
    assert!(splatt()
        .args(["export-model", model_path.to_str().unwrap()])
        .args(["--out", again.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert_eq!(
        std::fs::read(&model_path).unwrap(),
        std::fs::read(&again).unwrap(),
        "canonical model format must be a fixed point of export"
    );
    // And the loaded factors match the text model bit for bit.
    let canonical = splatt::core::load_model_path(&model_path).unwrap();
    let text =
        splatt::KruskalModel::read(std::fs::File::open(dir.join("m.kruskal")).unwrap()).unwrap();
    assert_eq!(canonical.lambda.len(), text.lambda.len());
    for (a, b) in canonical.lambda.iter().zip(&text.lambda) {
        assert_eq!(a.to_bits(), b.to_bits(), "lambda bits differ");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawn `splatt serve` and block until it prints its bound address.
fn spawn_server(model: &std::path::Path) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut child = splatt()
        .args(["serve", "--model"])
        .arg(format!("demo={}", model.display()))
        .args(["--addr", "127.0.0.1:0", "--tasks", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("server exited before binding").unwrap();
        if let Some(rest) = line.split(" on ").nth(1) {
            if line.starts_with("serving") {
                break rest.trim().to_string();
            }
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

#[test]
fn serve_and_query_cli_round_trip_matches_oracle() {
    let (dir, model_path) = exported_model("servecli");
    let model = splatt::core::load_model_path(&model_path).unwrap();
    let (mut child, addr) = spawn_server(&model_path);

    // Entry queries print one bit-exact value per line ({:.17e}
    // round-trips f64 exactly).
    let out = splatt()
        .args(["query", &addr, "entry", "--model", "demo"])
        .args(["--coords", "0,0,0;8,7,6;3,2,1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got: Vec<f64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().parse().unwrap())
        .collect();
    let want = [
        model.value_at(&[0, 0, 0]),
        model.value_at(&[8, 7, 6]),
        model.value_at(&[3, 2, 1]),
    ];
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.to_bits(), w.to_bits(), "served {g} vs oracle {w}");
    }

    // list names the model; a bad model name is a nonzero exit.
    let out = splatt().args(["query", &addr, "list"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("demo v1"));
    let out = splatt()
        .args(["query", &addr, "slice", "--model", "nope"])
        .args(["--mode", "0", "--index", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("ModelNotFound"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Wire shutdown stops the whole server process.
    assert!(splatt()
        .args(["query", &addr, "shutdown"])
        .status()
        .unwrap()
        .success());
    let status = child.wait().unwrap();
    assert!(status.success(), "server must exit cleanly after shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn serve_exits_promptly_on_sigterm() {
    let (dir, model_path) = exported_model("sigterm");
    let (mut child, addr) = spawn_server(&model_path);
    // Prove the server answers before the signal lands.
    assert!(splatt()
        .args(["query", &addr, "list"])
        .status()
        .unwrap()
        .success());
    assert!(std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap()
        .success());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server ignored SIGTERM"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    // SIGTERM is a graceful drain, not a crash: the process exits 0
    // after finishing queued work, instead of dying on the default
    // signal disposition.
    assert!(status.success(), "SIGTERM must drain and exit cleanly");
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawn `splatt serve --shards 3 --replicas 2` and block until the
/// router prints its bound address.
fn spawn_cluster(model: &std::path::Path) -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut child = splatt()
        .args(["serve", "--model"])
        .arg(format!("demo={}", model.display()))
        .args(["--addr", "127.0.0.1:0", "--shards", "3", "--replicas", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("cluster exited before binding")
            .unwrap();
        if let Some(rest) = line.split(" on ").nth(1) {
            if line.starts_with("serving") {
                break rest.trim().to_string();
            }
        }
    };
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

#[test]
fn cluster_serve_round_trip_matches_oracle_and_reports_shards() {
    let (dir, model_path) = exported_model("servecluster");
    let model = splatt::core::load_model_path(&model_path).unwrap();
    let (mut child, addr) = spawn_cluster(&model_path);

    // The router speaks the same wire protocol: plain `splatt query`
    // answers bit-identically to the oracle.
    let out = splatt()
        .args(["query", &addr, "entry", "--model", "demo"])
        .args(["--coords", "0,0,0;8,7,6;3,2,1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got: Vec<f64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| l.trim().parse().unwrap())
        .collect();
    let want = [
        model.value_at(&[0, 0, 0]),
        model.value_at(&[8, 7, 6]),
        model.value_at(&[3, 2, 1]),
    ];
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.to_bits(), w.to_bits(), "cluster served {g} vs oracle {w}");
    }

    // `splatt cluster` pings the router and prints the per-shard rows.
    let out = splatt().args(["cluster", &addr]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("healthy"), "{stdout}");
    assert!(stdout.contains("\"shards\": ["), "{stdout}");

    // Wire shutdown stops the whole cluster process.
    assert!(splatt()
        .args(["query", &addr, "shutdown"])
        .status()
        .unwrap()
        .success());
    let status = child.wait().unwrap();
    assert!(status.success(), "cluster must exit cleanly after shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!splatt().output().unwrap().status.success());
    assert!(!splatt().args(["cpd"]).output().unwrap().status.success());
    assert!(!splatt()
        .args(["cpd", "/definitely/not/a/file.tns"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!splatt()
        .args(["frobnicate", "x"])
        .output()
        .unwrap()
        .status
        .success());
}
